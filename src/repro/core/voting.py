"""Voting and voting schemes (paper Section 2.1, Definitions 2 and 3).

A :class:`Voting` is a concrete instance of a jury's votes on one binary
decision task: a vector of 0/1 values, one per juror.  A *voting scheme* maps
a voting to a single group decision; the paper uses **Majority Voting**
(Definition 3), implemented here by :class:`MajorityVoting`.

The module also provides :func:`carelessness`, the number of mistaken jurors
in a voting given the latent ground truth (Definition 5) — the random
quantity whose distribution (Poisson-Binomial) underlies the Jury Error Rate.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.juror import Jury
from repro.errors import EvenJurySizeError, InvalidJuryError

__all__ = [
    "Voting",
    "VotingScheme",
    "MajorityVoting",
    "carelessness",
    "is_minority_wrong",
]


@dataclass(frozen=True)
class Voting:
    """A valid instance of a jury: one binary vote per juror (Definition 2).

    Parameters
    ----------
    votes:
        Sequence of 0/1 values; ``votes[i]`` is the answer of the *i*-th juror
        of ``jury`` (1 = "yes/true", 0 = "no/false").
    jury:
        The jury that produced the votes.  Optional: schemes only need the
        votes, but carrying the jury enables carelessness computations.
    """

    votes: tuple[int, ...]
    jury: Jury | None = None

    def __init__(self, votes: Iterable[int], jury: Jury | None = None) -> None:
        raw = tuple(votes)
        if not raw:
            raise InvalidJuryError("a voting must contain at least one vote")
        if any(float(v) not in (0.0, 1.0) for v in raw):
            raise InvalidJuryError(f"votes must be binary 0/1, got {raw!r}")
        vote_tuple = tuple(int(v) for v in raw)
        if jury is not None and len(vote_tuple) != jury.size:
            raise InvalidJuryError(
                f"vote count ({len(vote_tuple)}) does not match jury size ({jury.size})"
            )
        object.__setattr__(self, "votes", vote_tuple)
        object.__setattr__(self, "jury", jury)

    @property
    def size(self) -> int:
        """Number of votes ``n``."""
        return len(self.votes)

    @property
    def yes_count(self) -> int:
        """Number of jurors voting 1."""
        return sum(self.votes)

    @property
    def no_count(self) -> int:
        """Number of jurors voting 0."""
        return self.size - self.yes_count

    def as_array(self) -> np.ndarray:
        """The votes as an ``int8`` NumPy array."""
        return np.asarray(self.votes, dtype=np.int8)


class VotingScheme:
    """Base class for voting schemes: functions from a voting to a decision.

    Subclasses implement :meth:`decide`.  The paper treats a scheme as "a
    function defined on a voting [whose] output is a decision"
    (Section 2.1.1).
    """

    name: str = "abstract"

    def decide(self, voting: Voting) -> int:
        """Return the group decision (0 or 1) for ``voting``."""
        raise NotImplementedError

    def __call__(self, voting: Voting) -> int:
        return self.decide(voting)


class MajorityVoting(VotingScheme):
    """Majority Voting (paper Definition 3).

    ``MV(V_n) = 1`` when at least ``(n+1)/2`` jurors vote 1, otherwise 0.
    The jury size must be odd so that a strict majority always exists; an
    even-sized voting raises :class:`~repro.errors.EvenJurySizeError` unless
    constructed with ``strict=False``, in which case ties resolve to
    ``tie_break``.

    Examples
    --------
    >>> mv = MajorityVoting()
    >>> mv.decide(Voting([1, 0, 1]))
    1
    >>> mv.decide(Voting([0, 0, 1]))
    0
    """

    name = "majority"

    def __init__(self, *, strict: bool = True, tie_break: int = 0) -> None:
        if tie_break not in (0, 1):
            raise InvalidJuryError(f"tie_break must be 0 or 1, got {tie_break!r}")
        self.strict = bool(strict)
        self.tie_break = int(tie_break)

    def decide(self, voting: Voting) -> int:
        n = voting.size
        if n % 2 == 0:
            if self.strict:
                raise EvenJurySizeError(
                    f"Majority Voting requires an odd jury size, got {n}"
                )
            if voting.yes_count * 2 == n:
                return self.tie_break
        return 1 if voting.yes_count >= (n + 1) // 2 else 0

    def decide_votes(self, votes: Sequence[int] | np.ndarray) -> int:
        """Shortcut accepting a raw 0/1 vector instead of a :class:`Voting`."""
        return self.decide(Voting(list(votes)))

    def decide_batch(self, votes: np.ndarray) -> np.ndarray:
        """Vectorised decisions for a batch of votings.

        Parameters
        ----------
        votes:
            Array of shape ``(num_votings, n)`` with 0/1 entries.

        Returns
        -------
        numpy.ndarray
            Vector of ``num_votings`` group decisions.
        """
        arr = np.asarray(votes)
        if arr.ndim != 2:
            raise InvalidJuryError(
                f"batch votes must be 2-dimensional, got shape {arr.shape}"
            )
        n = arr.shape[1]
        if n % 2 == 0 and self.strict:
            raise EvenJurySizeError(
                f"Majority Voting requires an odd jury size, got {n}"
            )
        counts = arr.sum(axis=1)
        decisions = (counts >= (n + 1) // 2).astype(np.int8)
        if n % 2 == 0 and not self.strict:
            ties = counts * 2 == n
            decisions[ties] = self.tie_break
        return decisions


def carelessness(voting: Voting, ground_truth: int, jury: Jury | None = None) -> int:
    """Number of mistaken jurors in a voting (paper Definition 5).

    Parameters
    ----------
    voting:
        The observed votes.
    ground_truth:
        Latent true answer ``A`` of the task (0 or 1).
    jury:
        Unused for the count itself; accepted for symmetry with the paper's
        notation ``C`` defined w.r.t. a jury ``J_n``.

    Returns
    -------
    int
        Count ``C`` of jurors whose vote differs from ``ground_truth``,
        with ``0 <= C <= n``.
    """
    if ground_truth not in (0, 1):
        raise InvalidJuryError(f"ground_truth must be 0 or 1, got {ground_truth!r}")
    return sum(1 for v in voting.votes if v != ground_truth)


def is_minority_wrong(voting: Voting, ground_truth: int) -> bool:
    """Whether the jury decision is correct, i.e. the wrong voters are a minority.

    Returns True when ``C < (n+1)/2`` so Majority Voting recovers the ground
    truth (odd sizes only).
    """
    n = voting.size
    if n % 2 == 0:
        raise EvenJurySizeError(f"minority test requires odd jury size, got {n}")
    return carelessness(voting, ground_truth) < (n + 1) // 2
