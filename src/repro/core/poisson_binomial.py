"""Poisson-Binomial distribution of the Carelessness count ``C``.

Paper Section 3.1 observes that the number of jurors who vote incorrectly on
a task is a sum of independent, non-identical Bernoulli variables — i.e. it
follows the **Poisson-Binomial distribution** with parameters
``epsilon_1, ..., epsilon_n``.  The Jury Error Rate is simply the upper tail
of this distribution at the majority threshold.

Three probability-mass-function backends are provided, mirroring the paper's
algorithmic discussion:

``pmf_naive``
    Enumerate all ``2^n`` outcomes (the "Minorities" of Definition 6).  Only
    usable for tiny juries; retained as the test oracle.
``pmf_dp``
    The textbook ``O(n^2)`` dynamic program: fold jurors in one at a time,
    convolving the running pmf with ``[1 - eps_i, eps_i]``.  This is the
    distribution-level counterpart of paper Algorithm 1.
``pmf_conv``
    Divide and conquer with (FFT-accelerated) polynomial multiplication,
    ``O(n log^2 n)`` — paper Algorithm 2 (CBA) computes exactly this product
    of first-order polynomials.

The :class:`PoissonBinomial` class wraps a pmf with moments, cdf/sf queries
and random sampling for the Monte-Carlo voting simulator.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable

import numpy as np

from repro._validation import as_probability_array

__all__ = [
    "pmf_naive",
    "pmf_dp",
    "pmf_conv",
    "convolve_pmfs",
    "tail_probability",
    "PoissonBinomial",
    "FFT_CROSSOVER",
]

#: Block size below which plain ``numpy.convolve`` beats FFT convolution.
#: Determined empirically; direct convolution is exact for small blocks which
#: also improves numerical robustness of the divide-and-conquer recursion.
FFT_CROSSOVER = 64


def pmf_naive(probabilities: Iterable[float]) -> np.ndarray:
    """Exact pmf by enumerating all ``2^n`` success patterns.

    Exponential-time oracle used in tests and for the paper's motivating
    example (Table 2).  Refuses juries larger than 20 members.

    Parameters
    ----------
    probabilities:
        Success probabilities of the independent Bernoulli variables (for the
        JER use case, the individual error rates).

    Returns
    -------
    numpy.ndarray
        Array ``p`` of length ``n + 1`` with ``p[k] = Pr(C = k)``.
    """
    probs = as_probability_array(probabilities, name="probabilities")
    n = probs.size
    if n > 20:
        raise ValueError(
            f"pmf_naive enumerates 2^n outcomes and is limited to n <= 20, got {n}"
        )
    pmf = np.zeros(n + 1, dtype=np.float64)
    for pattern in itertools.product((0, 1), repeat=n):
        weight = 1.0
        for p, hit in zip(probs, pattern):
            weight *= p if hit else (1.0 - p)
        pmf[sum(pattern)] += weight
    return pmf


def pmf_dp(probabilities: Iterable[float]) -> np.ndarray:
    """Exact pmf via the ``O(n^2)`` sequential dynamic program.

    Folds one Bernoulli variable in per step; numerically this is a cascade of
    length-2 convolutions and is the most robust of the fast backends.
    """
    probs = as_probability_array(probabilities, name="probabilities")
    n = probs.size
    pmf = np.zeros(n + 1, dtype=np.float64)
    pmf[0] = 1.0
    for i, p in enumerate(probs):
        # After processing i+1 variables only entries 0..i+1 are live.
        upper = i + 1
        pmf[1 : upper + 1] = pmf[1 : upper + 1] * (1.0 - p) + pmf[0:upper] * p
        pmf[0] *= 1.0 - p
    return pmf


def convolve_pmfs(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Convolve two pmfs, choosing direct or FFT convolution by size.

    The FFT path uses real FFTs with zero-padding to the exact output length
    and clips the tiny negative values that round-off can introduce.
    """
    la, lb = left.size, right.size
    if min(la, lb) < FFT_CROSSOVER:
        return np.convolve(left, right)
    out_len = la + lb - 1
    fft_len = 1 << (out_len - 1).bit_length()
    fa = np.fft.rfft(left, fft_len)
    fb = np.fft.rfft(right, fft_len)
    out = np.fft.irfft(fa * fb, fft_len)[:out_len]
    np.clip(out, 0.0, None, out=out)
    return out


def pmf_conv(probabilities: Iterable[float]) -> np.ndarray:
    """Exact pmf via divide-and-conquer polynomial multiplication (paper CBA).

    Each Bernoulli variable contributes the first-order polynomial
    ``(1 - eps_i) + eps_i * x``; the pmf of the sum is the coefficient vector
    of the product polynomial.  Balanced splitting plus FFT convolution gives
    ``O(n log^2 n)`` arithmetic, matching paper Algorithm 2.
    """
    probs = as_probability_array(probabilities, name="probabilities")
    n = probs.size
    if n == 0:
        return np.array([1.0])
    blocks = [np.array([1.0 - p, p], dtype=np.float64) for p in probs]
    # Iterative pairwise merging == bottom-up divide & conquer, avoiding
    # Python recursion depth limits on very large juries.
    while len(blocks) > 1:
        merged = []
        for i in range(0, len(blocks) - 1, 2):
            merged.append(convolve_pmfs(blocks[i], blocks[i + 1]))
        if len(blocks) % 2 == 1:
            merged.append(blocks[-1])
        blocks = merged
    pmf = blocks[0]
    np.clip(pmf, 0.0, None, out=pmf)
    return pmf


def tail_probability(pmf: np.ndarray, k: int) -> float:
    """Upper-tail probability ``Pr(C >= k)`` from a pmf vector.

    Sums from the high-probability-mass-free end for accuracy; values are
    clipped into ``[0, 1]`` to absorb round-off.
    """
    if k <= 0:
        return 1.0
    if k >= pmf.size:
        return 0.0
    tail = float(np.sum(pmf[k:]))
    return min(max(tail, 0.0), 1.0)


class PoissonBinomial:
    """Distribution of the number of successes of independent Bernoulli trials.

    Parameters
    ----------
    probabilities:
        Per-trial success probabilities in ``[0, 1]``.
    method:
        pmf backend: ``"dp"`` (default), ``"conv"``, ``"naive"`` or ``"auto"``
        which picks ``"dp"`` for small ``n`` and ``"conv"`` beyond
        :data:`FFT_CROSSOVER`.

    Examples
    --------
    >>> pb = PoissonBinomial([0.2, 0.3, 0.3])
    >>> round(pb.sf(2), 3)   # Pr(C >= 2) == the JER of this 3-juror jury
    0.174
    >>> round(pb.mean, 2)
    0.8
    """

    __slots__ = ("_probs", "_pmf")

    def __init__(self, probabilities: Iterable[float], *, method: str = "auto") -> None:
        self._probs = as_probability_array(probabilities, name="probabilities")
        if method == "auto":
            method = "dp" if self._probs.size < FFT_CROSSOVER else "conv"
        if method == "dp":
            self._pmf = pmf_dp(self._probs)
        elif method == "conv":
            self._pmf = pmf_conv(self._probs)
        elif method == "naive":
            self._pmf = pmf_naive(self._probs)
        else:
            raise ValueError(
                f"unknown method {method!r}; expected 'auto', 'dp', 'conv' or 'naive'"
            )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of trials."""
        return self._probs.size

    @property
    def probabilities(self) -> np.ndarray:
        """Per-trial success probabilities (read-only view)."""
        view = self._probs.view()
        view.flags.writeable = False
        return view

    @property
    def mean(self) -> float:
        """Expected number of successes, ``mu = sum(p_i)``."""
        return float(self._probs.sum())

    @property
    def variance(self) -> float:
        """Variance, ``sigma^2 = sum(p_i * (1 - p_i))``."""
        return float(np.sum(self._probs * (1.0 - self._probs)))

    @property
    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.variance)

    # ------------------------------------------------------------------
    def pmf(self, k: int | None = None):
        """Pmf value ``Pr(C = k)``, or the full vector when ``k`` is None."""
        if k is None:
            view = self._pmf.view()
            view.flags.writeable = False
            return view
        if k < 0 or k > self.n:
            return 0.0
        return float(self._pmf[k])

    def cdf(self, k: int) -> float:
        """Lower-tail probability ``Pr(C <= k)``."""
        if k < 0:
            return 0.0
        if k >= self.n:
            return 1.0
        return min(max(float(np.sum(self._pmf[: k + 1])), 0.0), 1.0)

    def sf(self, k: int) -> float:
        """Upper-tail (survival) probability ``Pr(C >= k)``.

        Note the convention: inclusive at ``k``, matching the paper's
        ``Pr(C >= (n+1)/2)`` definition of JER.
        """
        return tail_probability(self._pmf, k)

    def quantile(self, q: float) -> int:
        """Smallest ``k`` with ``cdf(k) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must lie in [0, 1], got {q!r}")
        cumulative = np.cumsum(self._pmf)
        idx = int(np.searchsorted(cumulative, q - 1e-15))
        return min(idx, self.n)

    def sample(self, size: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``size`` realisations of the success count.

        Sampling is by direct simulation of the underlying Bernoulli vector,
        which is what the Monte-Carlo voting simulator needs anyway.
        """
        generator = rng if rng is not None else np.random.default_rng()
        draws = generator.random((size, self.n)) < self._probs
        return draws.sum(axis=1)

    def normal_approximation(self, k: int) -> float:
        """Gaussian tail approximation of ``Pr(C >= k)`` with continuity correction.

        Used in tests as a sanity cross-check for large juries.
        """
        if self.variance == 0.0:
            return 1.0 if self.mean >= k else 0.0
        z = (k - 0.5 - self.mean) / self.std
        return 0.5 * math.erfc(z / math.sqrt(2.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PoissonBinomial(n={self.n}, mean={self.mean:.4g})"
