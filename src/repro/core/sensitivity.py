"""JER sensitivity analysis — how much each juror matters.

The proof of paper Lemma 3 decomposes the JER linearly in any one juror's
error rate:

    JER(J_n) = eps_i * Pr(C = t-1 | J_n \\ {j_i}) + Pr(C >= t | J_n \\ {j_i})

with ``t = (n+1)/2``.  The coefficient ``Pr(C = t-1 | J \\ {j_i})`` is
therefore the exact partial derivative ``dJER/deps_i`` — the probability
that juror *i* casts the pivotal vote.  This module computes those
derivatives for every juror in ``O(n^2)`` total via stable leave-one-out
deconvolution of the Carelessness pmf, and derives juror-importance
rankings from them.

Applications: explaining a selection ("whose reliability is the jury most
exposed to?"), prioritising which error-rate estimates to refine, and
quantifying the marginal value of replacing a juror.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro._validation import validate_error_rates
from repro.core.jer import _deconvolve_one, majority_threshold
from repro.core.juror import Jury
from repro.core.poisson_binomial import pmf_dp, tail_probability

__all__ = [
    "leave_one_out_pmf",
    "jer_gradient",
    "pivotal_probabilities",
    "JurorInfluence",
    "juror_influence_report",
]


def leave_one_out_pmf(pmf: np.ndarray, epsilon: float) -> np.ndarray:
    """Deconvolve one Bernoulli factor ``[1-eps, eps]`` out of a pmf.

    Given the pmf of ``C = X_1 + ... + X_n`` and the success probability of
    one constituent ``X_i``, returns the pmf of ``C - X_i``.  The forward
    recurrence (dividing by ``1 - eps``) is stable for ``eps < 0.5`` and the
    backward recurrence (dividing by ``eps``) for ``eps >= 0.5``; we pick the
    stable direction.  The single-factor case of
    :func:`repro.core.jer.deconvolve_pmf`.

    Parameters
    ----------
    pmf:
        Length ``n + 1`` pmf of the full sum.
    epsilon:
        Success probability of the factor to remove, in the open interval.

    Returns
    -------
    numpy.ndarray
        Length ``n`` pmf of the remaining sum, clipped into ``[0, 1]``.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    return _deconvolve_one(np.asarray(pmf, dtype=np.float64), float(epsilon))


def pivotal_probabilities(jury: "Jury | Iterable[float]") -> np.ndarray:
    """``Pr(C = t - 1 | J \\ {j_i})`` for every juror — the pivot chances.

    Juror *i* is *pivotal* when exactly ``t - 1`` of the other jurors err:
    then *i*'s own vote decides whether the majority is wrong.  By the
    Lemma 3 decomposition this equals ``dJER/deps_i``.

    >>> probs = pivotal_probabilities([0.2, 0.3, 0.3])
    >>> probs.shape
    (3,)
    """
    eps = _coerce(jury)
    n = eps.size
    threshold = majority_threshold(n)
    full_pmf = pmf_dp(eps)
    gradient = np.empty(n, dtype=np.float64)
    for i in range(n):
        rest = leave_one_out_pmf(full_pmf, float(eps[i]))
        gradient[i] = rest[threshold - 1] if threshold - 1 < rest.size else 0.0
    return gradient


def jer_gradient(jury: "Jury | Iterable[float]") -> np.ndarray:
    """Exact gradient of the JER with respect to each individual error rate.

    Identical to :func:`pivotal_probabilities` (the decomposition makes the
    pivot probability *be* the derivative); provided under the calculus name
    for optimisation-flavoured callers.

    >>> import numpy as np
    >>> g = jer_gradient([0.2, 0.3, 0.3])
    >>> bool(np.all(g >= 0))
    True
    """
    return pivotal_probabilities(jury)


def _coerce(jury: "Jury | Iterable[float]") -> np.ndarray:
    if isinstance(jury, Jury):
        return np.asarray(jury.error_rates, dtype=np.float64)
    return validate_error_rates(jury, name="error rates")


@dataclass(frozen=True)
class JurorInfluence:
    """Sensitivity record for one juror.

    Attributes
    ----------
    index:
        Position in the jury.
    juror_id:
        Identifier (synthesised for bare error-rate input).
    error_rate:
        The juror's ``eps_i``.
    pivotal_probability:
        ``dJER/deps_i`` — how exposed the jury is to this juror.
    contribution:
        ``eps_i * pivotal_probability`` — the share of the JER attributable
        to this juror erring pivotally.
    removal_delta:
        ``JER(J \\ {j_i, j_cheapest_other}) - JER(J)`` is not well defined
        for odd juries, so this reports the *two-sided* quantity
        ``Pr(C >= t | J \\ {j_i}) - JER(J)``: the JER change if the juror
        were replaced by a perfectly silent abstention (tail on the same
        threshold without them).
    """

    index: int
    juror_id: str
    error_rate: float
    pivotal_probability: float
    contribution: float
    removal_delta: float


def juror_influence_report(jury: "Jury | Iterable[float]") -> list[JurorInfluence]:
    """Per-juror sensitivity report, sorted by descending pivotal probability.

    >>> report = juror_influence_report([0.1, 0.3, 0.3])
    >>> report[0].pivotal_probability >= report[-1].pivotal_probability
    True
    """
    eps = _coerce(jury)
    ids = (
        [j.juror_id for j in jury.jurors]
        if isinstance(jury, Jury)
        else [f"j{i + 1}" for i in range(eps.size)]
    )
    threshold = majority_threshold(eps.size)
    full_pmf = pmf_dp(eps)
    jer = tail_probability(full_pmf, threshold)
    records = []
    for i in range(eps.size):
        rest = leave_one_out_pmf(full_pmf, float(eps[i]))
        pivot = rest[threshold - 1] if threshold - 1 < rest.size else 0.0
        without_tail = tail_probability(rest, threshold)
        records.append(
            JurorInfluence(
                index=i,
                juror_id=ids[i],
                error_rate=float(eps[i]),
                pivotal_probability=float(pivot),
                contribution=float(eps[i] * pivot),
                removal_delta=float(without_tail - jer),
            )
        )
    records.sort(key=lambda r: (-r.pivotal_probability, r.index))
    return records
