"""Incrementally maintained juries — O(n) add/remove with live JER.

Interactive jury curation ("what happens if I also ask @alice? what if I
drop @bob?") recomputes the JER after every edit; doing that from scratch
costs ``O(n^2)`` (Algorithm 1) or ``O(n log n)`` (Algorithm 2) per edit.
:class:`IncrementalJury` instead maintains the Carelessness pmf under

* ``add(juror)``    — one length-2 convolution, ``O(n)``;
* ``remove(juror)`` — one stable deconvolution, ``O(n)``
  (see :func:`repro.core.sensitivity.leave_one_out_pmf`);
* ``what_if_add`` / ``what_if_swap`` — hypothetical JERs without mutating.

JER queries are ``O(n)`` tail sums over the maintained pmf.  The structure
also accepts even intermediate sizes (JER is only defined at odd sizes;
querying it at an even size raises, matching the paper's odd-jury rule).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.jer import majority_threshold
from repro.core.juror import Juror, Jury
from repro.core.poisson_binomial import tail_probability
from repro.core.sensitivity import leave_one_out_pmf
from repro.errors import InvalidJuryError

__all__ = ["IncrementalJury"]


class IncrementalJury:
    """A mutable jury with O(n)-per-edit JER maintenance.

    Examples
    --------
    >>> from repro.core.juror import Juror
    >>> builder = IncrementalJury()
    >>> for eps, name in [(0.1, "A"), (0.2, "B"), (0.2, "C")]:
    ...     builder.add(Juror(eps, juror_id=name))
    >>> round(builder.jer(), 3)
    0.072
    >>> round(builder.what_if_add(Juror(0.3, juror_id="D"),
    ...                           Juror(0.3, juror_id="E")), 4)
    0.0704
    """

    def __init__(self, jurors: Iterable[Juror] = ()) -> None:
        self._members: dict[str, Juror] = {}
        self._pmf = np.ones(1, dtype=np.float64)
        for juror in jurors:
            self.add(juror)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, juror: Juror) -> None:
        """Add a juror; O(n)."""
        if not isinstance(juror, Juror):
            raise InvalidJuryError("only Juror instances can join a jury")
        if juror.juror_id in self._members:
            raise InvalidJuryError(f"juror {juror.juror_id!r} is already a member")
        self._members[juror.juror_id] = juror
        self._pmf = self._extend(self._pmf, juror.error_rate)

    def remove(self, juror_id: str) -> Juror:
        """Remove a member by id and return it; O(n)."""
        if juror_id not in self._members:
            raise InvalidJuryError(f"juror {juror_id!r} is not a member")
        juror = self._members.pop(juror_id)
        self._pmf = leave_one_out_pmf(self._pmf, juror.error_rate)
        return juror

    def swap(self, out_id: str, incoming: Juror) -> Juror:
        """Replace a member with a new juror; returns the removed member."""
        removed = self.remove(out_id)
        try:
            self.add(incoming)
        except InvalidJuryError:
            # Restore the original member before propagating.
            self.add(removed)
            raise
        return removed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current number of members."""
        return len(self._members)

    @property
    def members(self) -> tuple[Juror, ...]:
        """Current members, in insertion order."""
        return tuple(self._members.values())

    @property
    def total_cost(self) -> float:
        """Sum of member payment requirements."""
        return sum(j.requirement for j in self._members.values())

    def __contains__(self, juror_id: str) -> bool:
        return juror_id in self._members

    def pmf(self) -> np.ndarray:
        """Copy of the current Carelessness pmf."""
        return self._pmf.copy()

    def jer(self) -> float:
        """Current Jury Error Rate; requires an odd, non-empty jury."""
        threshold = majority_threshold(self.size)
        return tail_probability(self._pmf, threshold)

    def what_if_add(self, *jurors: Juror) -> float:
        """JER after hypothetically adding ``jurors`` (no mutation).

        The resulting size must be odd.
        """
        pmf = self._pmf
        seen = set(self._members)
        for juror in jurors:
            if juror.juror_id in seen:
                raise InvalidJuryError(
                    f"juror {juror.juror_id!r} is already a member"
                )
            seen.add(juror.juror_id)
            pmf = self._extend(pmf, juror.error_rate)
        threshold = majority_threshold(self.size + len(jurors))
        return tail_probability(pmf, threshold)

    def what_if_swap(self, out_id: str, incoming: Juror) -> float:
        """JER after hypothetically swapping one member (no mutation)."""
        if out_id not in self._members:
            raise InvalidJuryError(f"juror {out_id!r} is not a member")
        if incoming.juror_id in self._members and incoming.juror_id != out_id:
            raise InvalidJuryError(
                f"juror {incoming.juror_id!r} is already a member"
            )
        pmf = leave_one_out_pmf(self._pmf, self._members[out_id].error_rate)
        pmf = self._extend(pmf, incoming.error_rate)
        threshold = majority_threshold(self.size)
        return tail_probability(pmf, threshold)

    def freeze(self) -> Jury:
        """Snapshot the current members as an immutable :class:`Jury`."""
        return Jury(list(self._members.values()))

    # ------------------------------------------------------------------
    @staticmethod
    def _extend(pmf: np.ndarray, epsilon: float) -> np.ndarray:
        out = np.empty(pmf.size + 1, dtype=np.float64)
        out[0] = pmf[0] * (1.0 - epsilon)
        out[1:-1] = pmf[1:] * (1.0 - epsilon) + pmf[:-1] * epsilon
        out[-1] = pmf[-1] * epsilon
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IncrementalJury(size={self.size})"
