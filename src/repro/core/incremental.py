"""Incrementally maintained juries — O(n) add/remove with live JER.

Interactive jury curation ("what happens if I also ask @alice? what if I
drop @bob?") recomputes the JER after every edit; doing that from scratch
costs ``O(n^2)`` (Algorithm 1) or ``O(n log n)`` (Algorithm 2) per edit.
:class:`IncrementalJury` instead maintains the Carelessness pmf through the
delta kernels of :mod:`repro.core.jer`:

* ``add(juror)`` / ``add_all(jurors)`` — length-2 convolutions
  (:func:`repro.core.jer.convolve_pmf`), ``O(k * n)`` for ``k`` joiners;
* ``remove(juror)`` / ``remove_all(ids)`` — stable deconvolutions
  (:func:`repro.core.jer.deconvolve_pmf`), ``O(k * n)``;
* ``what_if_add`` / ``what_if_swap`` — hypothetical JERs without mutating.

JER queries are ``O(n)`` tail sums over the maintained pmf.  The structure
also accepts even intermediate sizes (JER is only defined at odd sizes;
querying it at an even size raises, matching the paper's odd-jury rule).

Deconvolution is ill-conditioned when many factors near ``eps = 0.5`` are
removed back to back: one removal can amplify pre-existing round-off by up
to ``~2n``, so a chain of ``r`` removals grows error like ``(2n)^r`` in the
worst case.  The jury therefore rebuilds its pmf from the surviving members
(``O(n^2)``, amortised over the chain) once
:data:`REBUILD_AFTER_REMOVALS` removals have accumulated since the last
from-scratch state — keeping arbitrarily long edit sessions within the
shared ``DECONV_ATOL`` of a scratch rebuild.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.jer import convolve_pmf, deconvolve_pmf, majority_threshold
from repro.core.juror import Juror, Jury
from repro.core.poisson_binomial import pmf_dp, tail_probability
from repro.errors import InvalidJuryError

__all__ = ["IncrementalJury", "REBUILD_AFTER_REMOVALS"]

#: Deconvolutions tolerated since the last exact pmf state before the jury
#: rebuilds from its member list.  Empirically, adversarial near-0.5 removal
#: chains of this length stay below ``1e-12`` absolute pmf error; two more
#: steps would already reach ``~1e-10``.
REBUILD_AFTER_REMOVALS = 4


class IncrementalJury:
    """A mutable jury with O(n)-per-edit JER maintenance.

    Examples
    --------
    >>> from repro.core.juror import Juror
    >>> builder = IncrementalJury()
    >>> for eps, name in [(0.1, "A"), (0.2, "B"), (0.2, "C")]:
    ...     builder.add(Juror(eps, juror_id=name))
    >>> round(builder.jer(), 3)
    0.072
    >>> round(builder.what_if_add(Juror(0.3, juror_id="D"),
    ...                           Juror(0.3, juror_id="E")), 4)
    0.0704
    """

    def __init__(self, jurors: Iterable[Juror] = ()) -> None:
        self._members: dict[str, Juror] = {}
        self._pmf = np.ones(1, dtype=np.float64)
        self._removals_since_rebuild = 0
        self.add_all(jurors)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, juror: Juror) -> None:
        """Add a juror; O(n)."""
        self.add_all([juror])

    def add_all(self, jurors: Iterable[Juror]) -> None:
        """Add ``k`` jurors in one pmf pass; O(k * n).

        Validation happens before any state changes, so a duplicate in the
        batch leaves the jury untouched.
        """
        incoming = list(jurors)
        seen = set(self._members)
        for juror in incoming:
            if not isinstance(juror, Juror):
                raise InvalidJuryError("only Juror instances can join a jury")
            if juror.juror_id in seen:
                raise InvalidJuryError(
                    f"juror {juror.juror_id!r} is already a member"
                )
            seen.add(juror.juror_id)
        if not incoming:
            return
        self._pmf = convolve_pmf(self._pmf, [j.error_rate for j in incoming])
        for juror in incoming:
            self._members[juror.juror_id] = juror

    def remove(self, juror_id: str) -> Juror:
        """Remove a member by id and return it; O(n)."""
        return self.remove_all([juror_id])[0]

    def remove_all(self, juror_ids: Iterable[str]) -> list[Juror]:
        """Remove ``k`` members in one pmf pass; O(k * n) amortised.

        Validation happens before any state changes, so an unknown id in the
        batch leaves the jury untouched.  Returns the removed jurors in the
        order given.  Once :data:`REBUILD_AFTER_REMOVALS` deconvolutions have
        accumulated, the pmf is instead recomputed from the surviving members
        so round-off cannot compound across long removal chains.
        """
        ids = list(juror_ids)
        pending = set()
        for juror_id in ids:
            if juror_id not in self._members or juror_id in pending:
                raise InvalidJuryError(f"juror {juror_id!r} is not a member")
            pending.add(juror_id)
        if not ids:
            return []
        removed = [self._members[i] for i in ids]
        for juror_id in ids:
            del self._members[juror_id]
        self._removals_since_rebuild += len(ids)
        if self._removals_since_rebuild > REBUILD_AFTER_REMOVALS:
            self._pmf = pmf_dp([j.error_rate for j in self._members.values()])
            self._removals_since_rebuild = 0
        else:
            self._pmf = deconvolve_pmf(self._pmf, [j.error_rate for j in removed])
        return removed

    def swap(self, out_id: str, incoming: Juror) -> Juror:
        """Replace a member with a new juror; returns the removed member."""
        removed = self.remove(out_id)
        try:
            self.add(incoming)
        except InvalidJuryError:
            # Restore the original member before propagating.
            self.add(removed)
            raise
        return removed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current number of members."""
        return len(self._members)

    @property
    def members(self) -> tuple[Juror, ...]:
        """Current members, in insertion order."""
        return tuple(self._members.values())

    @property
    def total_cost(self) -> float:
        """Sum of member payment requirements."""
        return sum(j.requirement for j in self._members.values())

    def __contains__(self, juror_id: str) -> bool:
        return juror_id in self._members

    def pmf(self) -> np.ndarray:
        """Copy of the current Carelessness pmf."""
        return self._pmf.copy()

    def jer(self) -> float:
        """Current Jury Error Rate; requires an odd, non-empty jury."""
        threshold = majority_threshold(self.size)
        return tail_probability(self._pmf, threshold)

    def what_if_add(self, *jurors: Juror) -> float:
        """JER after hypothetically adding ``jurors`` (no mutation).

        The resulting size must be odd.
        """
        seen = set(self._members)
        for juror in jurors:
            if juror.juror_id in seen:
                raise InvalidJuryError(
                    f"juror {juror.juror_id!r} is already a member"
                )
            seen.add(juror.juror_id)
        pmf = convolve_pmf(self._pmf, [j.error_rate for j in jurors])
        threshold = majority_threshold(self.size + len(jurors))
        return tail_probability(pmf, threshold)

    def what_if_swap(self, out_id: str, incoming: Juror) -> float:
        """JER after hypothetically swapping one member (no mutation)."""
        if out_id not in self._members:
            raise InvalidJuryError(f"juror {out_id!r} is not a member")
        if incoming.juror_id in self._members and incoming.juror_id != out_id:
            raise InvalidJuryError(
                f"juror {incoming.juror_id!r} is already a member"
            )
        pmf = deconvolve_pmf(self._pmf, [self._members[out_id].error_rate])
        pmf = convolve_pmf(pmf, [incoming.error_rate])
        threshold = majority_threshold(self.size)
        return tail_probability(pmf, threshold)

    def freeze(self) -> Jury:
        """Snapshot the current members as an immutable :class:`Jury`."""
        return Jury(list(self._members.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IncrementalJury(size={self.size})"
