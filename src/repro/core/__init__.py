"""Core library: the paper's primary contribution.

This package contains the domain model (jurors, juries, votings), the Jury
Error Rate machinery (Poisson-Binomial distribution, the DP and
convolution-based JER algorithms, probability bounds) and the jury-selection
algorithms for the AltrM and PayM crowdsourcing models.
"""

from repro.core.bounds import (
    cantelli_upper_bound,
    chernoff_upper_bound,
    gamma_ratio,
    hoeffding_upper_bound,
    markov_upper_bound,
    paley_zygmund_lower_bound,
)
from repro.core.jer import (
    PrefixJERSweeper,
    batch_prefix_jer_sweep,
    best_odd_prefix,
    convolve_pmf,
    deconvolve_pmf,
    jer_cba,
    jer_dp,
    jer_naive,
    jury_error_rate,
    majority_threshold,
    prefix_jer_profile,
    resume_prefix_sweep,
)
from repro.core.incremental import IncrementalJury
from repro.core.juror import Juror, Jury, jurors_from_arrays
from repro.core.poisson_binomial import PoissonBinomial, pmf_conv, pmf_dp, pmf_naive
from repro.core.selection import (
    SelectionResult,
    SelectionStats,
    altr_sweep_profile,
    branch_and_bound_optimal,
    enumerate_optimal,
    select_jury_altr,
    select_jury_lagrangian,
    select_jury_optimal,
    select_jury_pay,
)
from repro.core.sensitivity import (
    JurorInfluence,
    jer_gradient,
    juror_influence_report,
    leave_one_out_pmf,
    pivotal_probabilities,
)
from repro.core.voting import MajorityVoting, Voting, carelessness
from repro.core.weighted import (
    WeightedMajorityVoting,
    optimal_log_odds_weights,
    weighted_jury_error_rate,
)

__all__ = [
    # domain model
    "Juror",
    "Jury",
    "jurors_from_arrays",
    "IncrementalJury",
    "Voting",
    "MajorityVoting",
    "carelessness",
    # distribution + JER
    "PoissonBinomial",
    "pmf_naive",
    "pmf_dp",
    "pmf_conv",
    "jury_error_rate",
    "jer_naive",
    "jer_dp",
    "jer_cba",
    "majority_threshold",
    "PrefixJERSweeper",
    "batch_prefix_jer_sweep",
    "prefix_jer_profile",
    "best_odd_prefix",
    "convolve_pmf",
    "deconvolve_pmf",
    "resume_prefix_sweep",
    # bounds
    "paley_zygmund_lower_bound",
    "gamma_ratio",
    "markov_upper_bound",
    "cantelli_upper_bound",
    "hoeffding_upper_bound",
    "chernoff_upper_bound",
    # selection
    "SelectionResult",
    "SelectionStats",
    "select_jury_altr",
    "altr_sweep_profile",
    "select_jury_pay",
    "select_jury_lagrangian",
    "select_jury_optimal",
    "enumerate_optimal",
    "branch_and_bound_optimal",
    # sensitivity
    "jer_gradient",
    "pivotal_probabilities",
    "leave_one_out_pmf",
    "JurorInfluence",
    "juror_influence_report",
    # weighted voting
    "WeightedMajorityVoting",
    "optimal_log_odds_weights",
    "weighted_jury_error_rate",
]
