"""Jury Error Rate (JER) calculators — paper Definition 6, Algorithms 1 and 2.

The JER of a jury ``J_n`` with individual error rates ``eps_1..eps_n`` is the
probability that a strict majority of jurors err:

    JER(J_n) = Pr(C >= (n + 1) / 2)

where ``C`` is the Poisson-Binomial-distributed Carelessness count.  Three
calculators are provided:

``jer_naive``
    Direct enumeration of all "Minorities" (Definition 6).  ``O(2^n)``; the
    oracle the motivation example uses and the tests check against.
``jer_dp``
    Paper Algorithm 1: the tail-probability dynamic program of Lemma 1,
    ``O(n^2)`` time and ``O(n)`` space.
``jer_cba``
    Paper Algorithm 2 (Convolution-Based Algorithm): divide and conquer over
    the jury, merging Carelessness distributions with FFT convolution,
    ``O(n log n)`` arithmetic per merge level.

:func:`jury_error_rate` dispatches between them, and
:class:`PrefixJERSweeper` computes JER for *every* odd prefix of an ordered
candidate list in ``O(N^2)`` total — the workhorse that makes the AltrM sweep
(paper Algorithm 3) efficient.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator

import numpy as np

from repro._validation import validate_error_rates
from repro.core.juror import Jury
from repro.core.poisson_binomial import pmf_conv, tail_probability
from repro.errors import EvenJurySizeError

__all__ = [
    "majority_threshold",
    "jer_naive",
    "jer_dp",
    "jer_cba",
    "jury_error_rate",
    "PrefixJERSweeper",
]


def majority_threshold(n: int) -> int:
    """Number of wrong votes that sinks a jury of size ``n``: ``(n+1)/2``.

    Defined for odd ``n``; even sizes raise because Majority Voting is not
    well defined for them (Section 2.1.1).
    """
    if n < 1:
        raise ValueError(f"jury size must be positive, got {n}")
    if n % 2 == 0:
        raise EvenJurySizeError(
            f"JER requires an odd jury size for a strict majority, got {n}"
        )
    return (n + 1) // 2


def _coerce_error_rates(jury: "Jury | Iterable[float]") -> np.ndarray:
    if isinstance(jury, Jury):
        return np.asarray(jury.error_rates, dtype=np.float64)
    return validate_error_rates(jury, name="error rates")


def jer_naive(jury: "Jury | Iterable[float]") -> float:
    """JER by enumerating every subset of wrong jurors (Definition 6).

    Exponential time; limited to juries of at most 20 members.  Serves as the
    ground-truth oracle for the fast algorithms.

    >>> round(jer_naive([0.2, 0.3, 0.3]), 3)
    0.174
    """
    eps = _coerce_error_rates(jury)
    n = eps.size
    threshold = majority_threshold(n)
    if n > 20:
        raise ValueError(f"jer_naive is limited to n <= 20 jurors, got {n}")
    total = 0.0
    indices = range(n)
    for k in range(threshold, n + 1):
        for wrong in itertools.combinations(indices, k):
            wrong_set = set(wrong)
            prob = 1.0
            for i in indices:
                prob *= eps[i] if i in wrong_set else (1.0 - eps[i])
            total += prob
    return float(min(max(total, 0.0), 1.0))


def jer_dp(jury: "Jury | Iterable[float]") -> float:
    """JER via the dynamic program of paper Algorithm 1 / Lemma 1.

    Maintains ``T[L][m] = Pr(C >= L | J_m)`` with the recurrence

        T[L][m] = T[L-1][m-1] * eps_m + T[L][m-1] * (1 - eps_m)

    using two rolling rows, i.e. ``O(n^2)`` time and ``O(n)`` space exactly as
    Corollary 1 states.

    >>> round(jer_dp([0.1, 0.2, 0.2, 0.3, 0.3]), 4)
    0.0704
    """
    eps = _coerce_error_rates(jury)
    n = eps.size
    threshold = majority_threshold(n)
    # previous[m] holds Pr(C >= L-1 | J_m); current[m] holds Pr(C >= L | J_m).
    previous = np.ones(n + 1, dtype=np.float64)  # L = 0: Pr(C >= 0) == 1.
    current = np.empty(n + 1, dtype=np.float64)
    for level in range(1, threshold + 1):
        # Pr(C >= level | J_m) is zero while m < level.
        current[:level] = 0.0
        for m in range(level, n + 1):
            e = eps[m - 1]
            current[m] = previous[m - 1] * e + current[m - 1] * (1.0 - e)
        previous, current = current, previous
    return min(max(float(previous[n]), 0.0), 1.0)


def jer_cba(jury: "Jury | Iterable[float]") -> float:
    """JER via the Convolution-Based Algorithm (paper Algorithm 2).

    Computes the full Carelessness distribution by divide-and-conquer
    polynomial multiplication (FFT for large blocks) and sums the upper tail
    from the majority threshold.

    >>> round(jer_cba([0.2, 0.3, 0.3]), 3)
    0.174
    """
    eps = _coerce_error_rates(jury)
    threshold = majority_threshold(eps.size)
    pmf = pmf_conv(eps)
    return tail_probability(pmf, threshold)


_METHODS = {
    "naive": jer_naive,
    "dp": jer_dp,
    "cba": jer_cba,
}

#: Size above which the dispatcher prefers the FFT-based CBA over the DP.
_AUTO_CBA_THRESHOLD = 256


def jury_error_rate(jury: "Jury | Iterable[float]", *, method: str = "auto") -> float:
    """Compute the Jury Error Rate of a jury.

    Parameters
    ----------
    jury:
        A :class:`~repro.core.juror.Jury` or a bare iterable of individual
        error rates (each in the open interval ``(0, 1)``); the jury size must
        be odd.
    method:
        ``"naive"``, ``"dp"``, ``"cba"``, or ``"auto"`` (default) which uses
        the DP for small juries and CBA beyond ~256 jurors.

    Returns
    -------
    float
        ``Pr(C >= (n+1)/2)`` in ``[0, 1]``.

    Examples
    --------
    >>> round(jury_error_rate([0.1, 0.2, 0.2]), 3)
    0.072
    """
    if method == "auto":
        eps = _coerce_error_rates(jury)
        chosen = jer_cba if eps.size >= _AUTO_CBA_THRESHOLD else jer_dp
        return chosen(eps)
    try:
        func = _METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; expected one of "
            f"{sorted(_METHODS)} or 'auto'"
        ) from None
    return func(jury)


class PrefixJERSweeper:
    """Incremental JER over the odd prefixes of an ordered candidate list.

    Paper Algorithm 3 (AltrALG) evaluates the jury formed by the first ``n``
    jurors of the error-rate-sorted candidate list, for every odd ``n``.
    Recomputing each JER from scratch costs ``O(N^2 log N)`` overall; this
    sweeper instead maintains the Carelessness pmf and extends it by one juror
    per step (a length-2 convolution, ``O(n)``), so the whole sweep costs
    ``O(N^2)``.

    The sweeper is deliberately order-agnostic: it processes the error rates
    in the order given, so callers can feed any ordering (AltrALG feeds the
    ascending-``eps`` order mandated by Lemma 3).

    Examples
    --------
    >>> sweeper = PrefixJERSweeper([0.1, 0.2, 0.2, 0.3, 0.3])
    >>> [(n, round(j, 4)) for n, j in sweeper]
    [(1, 0.1), (3, 0.072), (5, 0.0704)]
    """

    def __init__(self, error_rates: Iterable[float]) -> None:
        self._eps = validate_error_rates(error_rates, name="error rates")

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return self.sweep()

    def sweep(self) -> Iterator[tuple[int, float]]:
        """Yield ``(n, JER(prefix of size n))`` for each odd ``n``."""
        n_total = self._eps.size
        pmf = np.ones(1, dtype=np.float64)
        for idx in range(n_total):
            e = self._eps[idx]
            extended = np.empty(idx + 2, dtype=np.float64)
            extended[0] = pmf[0] * (1.0 - e)
            extended[1 : idx + 1] = pmf[1:] * (1.0 - e) + pmf[:-1] * e
            extended[idx + 1] = pmf[-1] * e
            pmf = extended
            n = idx + 1
            if n % 2 == 1:
                yield n, tail_probability(pmf, (n + 1) // 2)

    def all_odd_prefixes(self) -> list[tuple[int, float]]:
        """Materialise the full sweep as a list."""
        return list(self.sweep())

    def best_prefix(self) -> tuple[int, float]:
        """Return ``(n, JER)`` of the odd prefix with the smallest JER.

        Ties break toward the smaller jury, matching the intuition that a
        smaller jury of equal quality is cheaper to convene.
        """
        best_n, best_jer = -1, float("inf")
        for n, value in self.sweep():
            if value < best_jer - 1e-15:
                best_n, best_jer = n, value
        if best_n < 0:
            raise ValueError("cannot sweep an empty candidate list")
        return best_n, best_jer
