"""Jury Error Rate (JER) calculators — paper Definition 6, Algorithms 1 and 2.

The JER of a jury ``J_n`` with individual error rates ``eps_1..eps_n`` is the
probability that a strict majority of jurors err:

    JER(J_n) = Pr(C >= (n + 1) / 2)

where ``C`` is the Poisson-Binomial-distributed Carelessness count.  Three
calculators are provided:

``jer_naive``
    Direct enumeration of all "Minorities" (Definition 6).  ``O(2^n)``; the
    oracle the motivation example uses and the tests check against.
``jer_dp``
    Paper Algorithm 1: the tail-probability dynamic program of Lemma 1,
    ``O(n^2)`` time and ``O(n)`` space.
``jer_cba``
    Paper Algorithm 2 (Convolution-Based Algorithm): divide and conquer over
    the jury, merging Carelessness distributions with FFT convolution,
    ``O(n log n)`` arithmetic per merge level.

:func:`jury_error_rate` dispatches between them, and
:class:`PrefixJERSweeper` computes JER for *every* odd prefix of an ordered
candidate list in ``O(N^2)`` total — the workhorse that makes the AltrM sweep
(paper Algorithm 3) efficient.

For batched workloads (many selection queries at once, see
:mod:`repro.service`), :func:`batch_prefix_jer_sweep` runs the same prefix
sweep over a whole *matrix* of candidate pools in one vectorized 2-D NumPy
pass, producing results bit-identical to :class:`PrefixJERSweeper` row by
row; :func:`prefix_jer_profile` and :func:`best_odd_prefix` are the scalar
conveniences the selection algorithms build on.

The plan layer's physical operators (:mod:`repro.plan.operators`) lean on
three more block kernels: :func:`extend_pmf` (the single-factor hot path),
:func:`extend_pmf_block` (fan one pmf out by ``k`` alternative factors —
the vectorized PayALG pair trial), and :func:`batch_jury_jer` (JER of many
equal-size juries at once — the blocked exact enumeration).  All three
apply the same multiply-add expression as the sweep kernels, so every
execution path produces bit-identical probabilities.

Since the compiled-kernel refactor the batch/block kernels here are thin
validating wrappers that dispatch through the backend registry in
:mod:`repro.core.kernels` — NumPy reference, numba JIT, or cc-compiled
native code, all held to bitwise equality by an activation self-check, with
cost-model crossovers deciding per call under ``REPRO_KERNEL_BACKEND=auto``.

For *live* workloads (candidate pools that churn between queries, see
:mod:`repro.service.registry`), three delta kernels maintain Carelessness
state without full recomputation:

:func:`convolve_pmf`
    Fold ``k`` new jurors into an existing pmf — ``k`` vectorized length-2
    convolutions, ``O(k * n)`` total.
:func:`deconvolve_pmf`
    Remove ``k`` jurors from a pmf by stable deconvolution, ``O(k * n)``.
:func:`resume_prefix_sweep`
    Repair the prefix pmf matrix (and odd-prefix JER profile) of an ordered
    candidate list from a *clean watermark* onward, reusing every prefix row
    below the first churned position.  Rows above the watermark are rebuilt
    with the exact arithmetic of :func:`batch_prefix_jer_sweep`, so delta
    maintenance is bit-identical to sweeping from scratch.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator

import numpy as np

from repro._validation import validate_error_rates
from repro.core import kernels as _kernels
from repro.core.juror import Jury
from repro.core.poisson_binomial import pmf_conv, tail_probability
from repro.errors import EvenJurySizeError, InvalidErrorRateError

__all__ = [
    "majority_threshold",
    "jer_naive",
    "jer_dp",
    "jer_cba",
    "jury_error_rate",
    "PrefixJERSweeper",
    "batch_prefix_jer_sweep",
    "batch_jury_jer",
    "prefix_jer_profile",
    "best_odd_prefix",
    "convolve_pmf",
    "deconvolve_pmf",
    "extend_pmf",
    "extend_pmf_block",
    "resume_prefix_sweep",
    "JER_IMPROVEMENT_EPS",
    "AUTO_CBA_THRESHOLD",
]

#: Minimum JER improvement that counts as "strictly better" when comparing
#: candidate juries.  Shared by every selector so tie-breaking (prefer the
#: smaller jury) is consistent between the scalar and batch paths.
JER_IMPROVEMENT_EPS = 1e-15


def majority_threshold(n: int) -> int:
    """Number of wrong votes that sinks a jury of size ``n``: ``(n+1)/2``.

    Defined for odd ``n``; even sizes raise because Majority Voting is not
    well defined for them (Section 2.1.1).
    """
    if n < 1:
        raise ValueError(f"jury size must be positive, got {n}")
    if n % 2 == 0:
        raise EvenJurySizeError(
            f"JER requires an odd jury size for a strict majority, got {n}"
        )
    return (n + 1) // 2


def _coerce_error_rates(jury: "Jury | Iterable[float]") -> np.ndarray:
    if isinstance(jury, Jury):
        return np.asarray(jury.error_rates, dtype=np.float64)
    return validate_error_rates(jury, name="error rates")


def jer_naive(jury: "Jury | Iterable[float]") -> float:
    """JER by enumerating every subset of wrong jurors (Definition 6).

    Exponential time; limited to juries of at most 20 members.  Serves as the
    ground-truth oracle for the fast algorithms.

    >>> round(jer_naive([0.2, 0.3, 0.3]), 3)
    0.174
    """
    eps = _coerce_error_rates(jury)
    n = eps.size
    threshold = majority_threshold(n)
    if n > 20:
        raise ValueError(f"jer_naive is limited to n <= 20 jurors, got {n}")
    total = 0.0
    indices = range(n)
    for k in range(threshold, n + 1):
        for wrong in itertools.combinations(indices, k):
            wrong_set = set(wrong)
            prob = 1.0
            for i in indices:
                prob *= eps[i] if i in wrong_set else (1.0 - eps[i])
            total += prob
    return float(min(max(total, 0.0), 1.0))


def jer_dp(jury: "Jury | Iterable[float]") -> float:
    """JER via the dynamic program of paper Algorithm 1 / Lemma 1.

    Maintains ``T[L][m] = Pr(C >= L | J_m)`` with the recurrence

        T[L][m] = T[L-1][m-1] * eps_m + T[L][m-1] * (1 - eps_m)

    using two rolling rows, i.e. ``O(n^2)`` time and ``O(n)`` space exactly as
    Corollary 1 states.

    >>> round(jer_dp([0.1, 0.2, 0.2, 0.3, 0.3]), 4)
    0.0704
    """
    eps = _coerce_error_rates(jury)
    n = eps.size
    threshold = majority_threshold(n)
    # previous[m] holds Pr(C >= L-1 | J_m); current[m] holds Pr(C >= L | J_m).
    previous = np.ones(n + 1, dtype=np.float64)  # L = 0: Pr(C >= 0) == 1.
    current = np.empty(n + 1, dtype=np.float64)
    for level in range(1, threshold + 1):
        # Pr(C >= level | J_m) is zero while m < level.
        current[:level] = 0.0
        for m in range(level, n + 1):
            e = eps[m - 1]
            current[m] = previous[m - 1] * e + current[m - 1] * (1.0 - e)
        previous, current = current, previous
    return min(max(float(previous[n]), 0.0), 1.0)


def jer_cba(jury: "Jury | Iterable[float]") -> float:
    """JER via the Convolution-Based Algorithm (paper Algorithm 2).

    Computes the full Carelessness distribution by divide-and-conquer
    polynomial multiplication (FFT for large blocks) and sums the upper tail
    from the majority threshold.

    >>> round(jer_cba([0.2, 0.3, 0.3]), 3)
    0.174
    """
    eps = _coerce_error_rates(jury)
    threshold = majority_threshold(eps.size)
    pmf = pmf_conv(eps)
    return tail_probability(pmf, threshold)


_METHODS = {
    "naive": jer_naive,
    "dp": jer_dp,
    "cba": jer_cba,
}

#: Size above which the dispatcher prefers the FFT-based CBA over the DP.
#: Public because the plan-layer cost model (:mod:`repro.plan.cost`) reports
#: the backend :func:`jury_error_rate` would pick for a pool of a given size.
AUTO_CBA_THRESHOLD = 256
_AUTO_CBA_THRESHOLD = AUTO_CBA_THRESHOLD


def jury_error_rate(jury: "Jury | Iterable[float]", *, method: str = "auto") -> float:
    """Compute the Jury Error Rate of a jury.

    Parameters
    ----------
    jury:
        A :class:`~repro.core.juror.Jury` or a bare iterable of individual
        error rates (each in the open interval ``(0, 1)``); the jury size must
        be odd.
    method:
        ``"naive"``, ``"dp"``, ``"cba"``, or ``"auto"`` (default) which uses
        the DP for small juries and CBA beyond ~256 jurors.

    Returns
    -------
    float
        ``Pr(C >= (n+1)/2)`` in ``[0, 1]``.

    Examples
    --------
    >>> round(jury_error_rate([0.1, 0.2, 0.2]), 3)
    0.072
    """
    if method == "auto":
        eps = _coerce_error_rates(jury)
        chosen = jer_cba if eps.size >= _AUTO_CBA_THRESHOLD else jer_dp
        return chosen(eps)
    try:
        func = _METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; expected one of "
            f"{sorted(_METHODS)} or 'auto'"
        ) from None
    return func(jury)


class PrefixJERSweeper:
    """Incremental JER over the odd prefixes of an ordered candidate list.

    Paper Algorithm 3 (AltrALG) evaluates the jury formed by the first ``n``
    jurors of the error-rate-sorted candidate list, for every odd ``n``.
    Recomputing each JER from scratch costs ``O(N^2 log N)`` overall; this
    sweeper instead maintains the Carelessness pmf and extends it by one juror
    per step (a length-2 convolution, ``O(n)``), so the whole sweep costs
    ``O(N^2)``.

    The sweeper is deliberately order-agnostic: it processes the error rates
    in the order given, so callers can feed any ordering (AltrALG feeds the
    ascending-``eps`` order mandated by Lemma 3).

    Examples
    --------
    >>> sweeper = PrefixJERSweeper([0.1, 0.2, 0.2, 0.3, 0.3])
    >>> [(n, round(j, 4)) for n, j in sweeper]
    [(1, 0.1), (3, 0.072), (5, 0.0704)]
    """

    def __init__(self, error_rates: Iterable[float]) -> None:
        self._eps = validate_error_rates(error_rates, name="error rates")

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return self.sweep()

    def sweep(self) -> Iterator[tuple[int, float]]:
        """Yield ``(n, JER(prefix of size n))`` for each odd ``n``."""
        n_total = self._eps.size
        pmf = np.ones(1, dtype=np.float64)
        for idx in range(n_total):
            e = self._eps[idx]
            extended = np.empty(idx + 2, dtype=np.float64)
            extended[0] = pmf[0] * (1.0 - e)
            extended[1 : idx + 1] = pmf[1:] * (1.0 - e) + pmf[:-1] * e
            extended[idx + 1] = pmf[-1] * e
            pmf = extended
            n = idx + 1
            if n % 2 == 1:
                yield n, tail_probability(pmf, (n + 1) // 2)

    def all_odd_prefixes(self) -> list[tuple[int, float]]:
        """Materialise the full sweep as a list."""
        return list(self.sweep())

    def best_prefix(self) -> tuple[int, float]:
        """Return ``(n, JER)`` of the odd prefix with the smallest JER.

        Ties break toward the smaller jury, matching the intuition that a
        smaller jury of equal quality is cheaper to convene.
        """
        best_n, best_jer = -1, float("inf")
        for n, value in self.sweep():
            if value < best_jer - JER_IMPROVEMENT_EPS:
                best_n, best_jer = n, value
        if best_n < 0:
            raise ValueError("cannot sweep an empty candidate list")
        return best_n, best_jer


def batch_prefix_jer_sweep(
    error_rate_matrix, *, backend: str | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Prefix-JER sweep over a whole batch of candidate pools at once.

    The scalar :class:`PrefixJERSweeper` extends one Carelessness pmf by one
    juror per step; this kernel maintains a ``(B, N + 1)`` pmf *matrix* — one
    row per pool — and extends all ``B`` pmfs simultaneously with 2-D NumPy
    arithmetic, so the whole batch is swept in a single ``O(B * N^2)`` pass
    whose inner loops are vectorized across the batch dimension.

    Parameters
    ----------
    error_rate_matrix:
        Array-like of shape ``(B, N)``: row ``b`` holds the individual error
        rates of pool ``b`` in sweep order (AltrALG feeds the ascending-``eps``
        order mandated by Lemma 3).  All pools must share the same length;
        group pools by size before calling.
    backend:
        Optional concrete kernel-backend name (``"numpy"``/``"numba"``/
        ``"native"``) threaded in from a :class:`~repro.plan.planner.
        SelectionPlan`.  ``None`` dispatches through the session mode and
        the cost-model crossovers (:mod:`repro.core.kernels`).

    Returns
    -------
    (ns, jer_matrix):
        ``ns`` is the 1-D array of odd prefix sizes ``[1, 3, ..]`` and
        ``jer_matrix`` has shape ``(B, len(ns))`` with
        ``jer_matrix[b, i] == JER(first ns[i] jurors of pool b)``.

    Notes
    -----
    Each row reproduces :class:`PrefixJERSweeper` *bit-identically*: the
    update applies the same multiply-add expression element-wise (the extra
    top entry of the full-width row is ``0`` before its first touch, and
    ``0 * (1 - e) + pmf[n] * e`` equals the scalar sweeper's dedicated
    ``pmf[-1] * e`` assignment exactly in IEEE-754), and the tail sums reduce
    slices of identical length and contents with the same pairwise summation.
    Compiled backends are held to the same bit-identity by the activation
    self-check (:mod:`repro.core.kernels._verify`), so backend choice can
    never change a selection.

    Examples
    --------
    >>> ns, jers = batch_prefix_jer_sweep([[0.1, 0.2, 0.2], [0.3, 0.3, 0.3]])
    >>> ns.tolist()
    [1, 3]
    >>> [round(float(v), 3) for v in jers[0]]
    [0.1, 0.072]
    """
    eps = np.asarray(error_rate_matrix, dtype=np.float64)
    if eps.ndim != 2:
        raise ValueError(
            f"error_rate_matrix must be 2-D (batch, pool_size), got shape {eps.shape}"
        )
    n_batch, n_total = eps.shape
    if n_total == 0:
        raise ValueError("cannot sweep empty candidate pools")
    if eps.size and (
        not np.all(np.isfinite(eps)) or np.any(eps <= 0.0) or np.any(eps >= 1.0)
    ):
        raise InvalidErrorRateError(
            "all error rates must lie in the open interval (0, 1)"
        )

    ns = np.arange(1, n_total + 1, 2, dtype=np.int64)
    impl = _kernels.backend_for("sweep", n_total, forced=backend)
    return ns, impl.sweep(eps)


def batch_jury_jer(error_rate_matrix) -> np.ndarray:
    """JER of many equal-size juries at once (full juries, not prefixes).

    The plan layer's enumeration operator scores whole *candidate blocks*
    with this kernel: row ``b`` holds the individual error rates of jury
    ``b`` (all rows the same odd size ``k``) and the result is the 1-D array
    of their Jury Error Rates.

    Each row's Carelessness pmf is grown one factor at a time with the same
    multiply-add expression as :func:`extend_pmf` (the extra top entry of the
    full-width row is ``0`` before its first touch, so ``0 * (1 - e) +
    pmf[n] * e`` equals the dedicated top assignment exactly in IEEE-754),
    and the tail reduction sums a slice of identical length and contents to
    :func:`~repro.core.poisson_binomial.tail_probability` — values are
    therefore **bit-identical** to the scalar extension chain the exact
    solvers historically used.

    Examples
    --------
    >>> [round(float(v), 3) for v in batch_jury_jer([[0.2, 0.3, 0.3],
    ...                                              [0.1, 0.2, 0.2]])]
    [0.174, 0.072]
    """
    eps = np.asarray(error_rate_matrix, dtype=np.float64)
    if eps.ndim != 2:
        raise ValueError(
            f"error_rate_matrix must be 2-D (batch, jury_size), got shape {eps.shape}"
        )
    n_batch, size = eps.shape
    threshold = majority_threshold(size)
    if eps.size and (
        not np.all(np.isfinite(eps)) or np.any(eps <= 0.0) or np.any(eps >= 1.0)
    ):
        raise InvalidErrorRateError(
            "all error rates must lie in the open interval (0, 1)"
        )
    impl = _kernels.backend_for("jury_jer", eps.size)
    return impl.jury_jer(eps, threshold)


def prefix_jer_profile(
    error_rates: Iterable[float], *, backend: str | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Odd-prefix JER profile of a single ordered candidate list.

    Thin wrapper over :func:`batch_prefix_jer_sweep` with a batch of one —
    the scalar selection path and the batch engine therefore share one
    kernel and produce bit-identical numbers.  ``backend`` threads a plan's
    kernel-backend choice through to the sweep dispatch.

    >>> ns, jers = prefix_jer_profile([0.1, 0.2, 0.2, 0.3, 0.3])
    >>> list(zip(ns.tolist(), [round(float(v), 4) for v in jers]))
    [(1, 0.1), (3, 0.072), (5, 0.0704)]
    """
    eps = validate_error_rates(error_rates, name="error rates")
    ns, jers = batch_prefix_jer_sweep(eps[np.newaxis, :], backend=backend)
    return ns, jers[0]


def best_odd_prefix(
    ns: np.ndarray,
    jers: np.ndarray,
    *,
    max_size: int | None = None,
) -> tuple[int, float]:
    """Pick the winning odd prefix from a sweep profile.

    Scans in increasing-size order and keeps the first prefix that improves
    the incumbent by more than :data:`JER_IMPROVEMENT_EPS` — the exact
    tie-break rule of the scalar selectors (prefer the smaller jury).

    Parameters
    ----------
    ns, jers:
        A profile as returned by :func:`prefix_jer_profile` /
        one row of :func:`batch_prefix_jer_sweep`.
    max_size:
        Optional cap: prefixes larger than this are ignored.

    Returns
    -------
    (n, jer) of the winning prefix.
    """
    best_n, best_jer = -1, float("inf")
    for n, value in zip(ns, jers):
        if max_size is not None and n > max_size:
            break
        if value < best_jer - JER_IMPROVEMENT_EPS:
            best_n, best_jer = int(n), float(value)
    if best_n < 0:
        raise ValueError("cannot select from an empty sweep profile")
    return best_n, best_jer


# ----------------------------------------------------------------------
# Delta kernels: O(k * n) churn maintenance for live pools
# ----------------------------------------------------------------------

def _coerce_pmf(pmf, *, name: str = "pmf") -> np.ndarray:
    arr = np.asarray(pmf, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D array, got shape {arr.shape}")
    return arr


def extend_pmf(pmf: np.ndarray, epsilon: float) -> np.ndarray:
    """Convolve a Carelessness pmf with one juror's ``[1-eps, eps]`` factor.

    The single-factor fast path of :func:`convolve_pmf` (no validation, no
    zero-padded working buffer): the hot inner step of the exact solvers'
    search loops and the vectorized PayALG trials.  The arithmetic is the
    identical multiply-add, so pmfs grown here are bit-for-bit equal to
    :func:`convolve_pmf` folding the same factor.
    """
    out = np.empty(pmf.size + 1, dtype=np.float64)
    out[0] = pmf[0] * (1.0 - epsilon)
    out[1:-1] = pmf[1:] * (1.0 - epsilon) + pmf[:-1] * epsilon
    out[-1] = pmf[-1] * epsilon
    return out


def extend_pmf_block(pmf: np.ndarray, epsilons) -> np.ndarray:
    """Extend one pmf by each of ``k`` *alternative* single factors.

    Where :func:`convolve_pmf` folds ``k`` factors into one pmf, this kernel
    fans out: row ``i`` of the ``(k, n + 1)`` result is
    ``extend_pmf(pmf, epsilons[i])``.  It is the kernel behind the
    vectorized PayALG pair trials, which score a whole block of candidate
    enlargements against the same incumbent pmf in one 2-D pass; each row is
    bit-identical to the scalar :func:`extend_pmf`.

    >>> import numpy as np
    >>> rows = extend_pmf_block(np.array([0.7, 0.3]), [0.5, 0.1])
    >>> bool(np.array_equal(rows[1], extend_pmf(np.array([0.7, 0.3]), 0.1)))
    True
    """
    base = _coerce_pmf(pmf)
    eps = np.asarray(epsilons, dtype=np.float64)
    if eps.ndim != 1:
        raise ValueError(f"epsilons must be 1-D, got shape {eps.shape}")
    impl = _kernels.backend_for("extend_block", eps.size * (base.size + 1))
    return impl.extend_block(base, eps)


def convolve_pmf(pmf, epsilons) -> np.ndarray:
    """Fold ``k`` new Bernoulli factors into a Carelessness pmf, ``O(k * n)``.

    Given the pmf of ``C = X_1 + ... + X_n`` and the error rates of ``k``
    additional jurors, returns the pmf of the enlarged sum.  Each factor is
    one vectorized length-2 convolution — the batch generalisation of the
    single-juror extension :class:`~repro.core.incremental.IncrementalJury`
    performs on ``add``.

    >>> from repro.core.poisson_binomial import pmf_dp
    >>> import numpy as np
    >>> grown = convolve_pmf(pmf_dp([0.1, 0.2]), [0.3, 0.4])
    >>> bool(np.allclose(grown, pmf_dp([0.1, 0.2, 0.3, 0.4])))
    True
    """
    base = _coerce_pmf(pmf)
    eps = validate_error_rates(epsilons, name="epsilons")
    impl = _kernels.backend_for("convolve", eps.size * (base.size + eps.size))
    return impl.convolve(base, eps)


def deconvolve_pmf(pmf, epsilons) -> np.ndarray:
    """Remove ``k`` Bernoulli factors from a Carelessness pmf, ``O(k * n)``.

    The inverse of :func:`convolve_pmf`: given the pmf of
    ``C = X_1 + ... + X_n`` and the success probabilities of ``k``
    constituents, returns the pmf of the sum without them.  Each factor is
    deconvolved in its numerically stable direction — the forward recurrence
    (dividing by ``1 - eps``) for ``eps < 0.5``, the backward recurrence
    (dividing by ``eps``) otherwise — so the per-position contraction of each
    step stays at most 1.

    .. warning::
       Deconvolution is only conditionally stable: a factor near
       ``eps = 0.5`` amplifies *pre-existing* error in the input pmf by up
       to ``~2n`` along the recurrence, so a chain of ``r`` removals can
       grow round-off like ``(2n)^r``.  Keep batches short (a handful of
       factors) or rebuild from the surviving factors periodically —
       :class:`~repro.core.incremental.IncrementalJury` does exactly that
       after :data:`~repro.core.incremental.REBUILD_AFTER_REMOVALS`
       removals.  The live-pool profile path never deconvolves (it repairs
       forward from a clean prefix), which is why it stays bit-exact.

    >>> from repro.core.poisson_binomial import pmf_dp
    >>> import numpy as np
    >>> shrunk = deconvolve_pmf(pmf_dp([0.1, 0.2, 0.3, 0.4]), [0.2, 0.4])
    >>> bool(np.allclose(shrunk, pmf_dp([0.1, 0.3]), atol=1e-12))
    True
    """
    out = _coerce_pmf(pmf).copy()
    eps = validate_error_rates(epsilons, name="epsilons")
    if eps.size >= out.size:
        raise ValueError(
            f"cannot deconvolve {eps.size} factors out of a pmf of "
            f"{out.size - 1} factors"
        )
    for e in eps:
        out = _deconvolve_one(out, float(e))
    return out


def _deconvolve_one(pmf: np.ndarray, epsilon: float) -> np.ndarray:
    """Deconvolve a single factor ``[1-eps, eps]`` in the stable direction."""
    n = pmf.size - 1
    out = np.empty(n, dtype=np.float64)
    complement = 1.0 - epsilon
    if epsilon < 0.5:
        # Forward: pmf[k] = out[k]*(1-e) + out[k-1]*e.
        out[0] = pmf[0] / complement
        for k in range(1, n):
            out[k] = (pmf[k] - out[k - 1] * epsilon) / complement
    else:
        # Backward: the same identity, solved from the top.
        out[n - 1] = pmf[n] / epsilon
        for k in range(n - 1, 0, -1):
            out[k - 1] = (pmf[k] - out[k] * complement) / epsilon
    np.clip(out, 0.0, 1.0, out=out)
    return out


def resume_prefix_sweep(
    eps: np.ndarray,
    pmf_matrix: np.ndarray,
    jers: np.ndarray,
    *,
    start: int = 0,
) -> None:
    """Repair a prefix pmf matrix and JER profile in place from row ``start``.

    The persistent state of a live pool's sweep is the *prefix pmf matrix*:
    row ``m`` holds the Carelessness pmf of the first ``m`` jurors (in
    Lemma 3 order) in columns ``0..m``, with zeros above.  A churn event at
    sorted position ``p`` leaves rows ``0..p`` untouched; this kernel
    rebuilds rows ``start + 1 .. n`` (and the JER entries of the odd prefix
    sizes above ``start``) from the clean row ``start``, reusing everything
    below the watermark.

    Each rebuilt row applies the exact multiply-add expression of
    :func:`batch_prefix_jer_sweep` and the same contiguous tail reduction,
    so a repaired profile is **bit-identical** to sweeping the current
    ordering from scratch — delta maintenance cannot drift.

    Parameters
    ----------
    eps:
        Error rates of all ``n`` candidates in sweep (Lemma 3) order.
    pmf_matrix:
        Float64 matrix with at least ``n + 1`` rows and columns.  Row
        ``start`` must hold a valid prefix pmf and every row's columns above
        its own index must be zero (the natural state of a zero-initialised
        matrix that has only ever been written by this kernel).
    jers:
        Float64 vector with at least ``(n + 1) // 2`` entries;
        ``jers[i]`` is the JER of the odd prefix of size ``2 * i + 1``.
        Entries for odd sizes ``<= start`` are preserved.
    start:
        The clean watermark: number of leading prefix rows already valid.
        ``start == 0`` performs a full sweep (row 0 is reset to the empty
        pmf ``[1, 0, ...]``).
    """
    n_total = int(eps.size)
    if n_total == 0:
        raise ValueError("cannot sweep an empty candidate list")
    if not 0 <= start <= n_total:
        raise ValueError(f"start must lie in [0, {n_total}], got {start}")
    if pmf_matrix.shape[0] < n_total + 1 or pmf_matrix.shape[1] < n_total + 1:
        raise ValueError(
            f"pmf_matrix must be at least ({n_total + 1}, {n_total + 1}), "
            f"got {pmf_matrix.shape}"
        )
    if jers.size < (n_total + 1) // 2:
        raise ValueError(
            f"jers must hold at least {(n_total + 1) // 2} entries, got {jers.size}"
        )
    if start == 0:
        pmf_matrix[0, 0] = 1.0
    for idx in range(start, n_total):
        e = eps[idx]
        row = pmf_matrix[idx]
        nxt = pmf_matrix[idx + 1]
        upper = idx + 1
        # Same multiply-add as batch_prefix_jer_sweep: ``row[upper]`` is 0 by
        # the matrix invariant, so entry ``upper`` becomes ``row[idx] * e``.
        nxt[1 : upper + 1] = row[1 : upper + 1] * (1.0 - e) + row[0:upper] * e
        nxt[0] = row[0] * (1.0 - e)
        n = idx + 1
        if n % 2 == 1:
            threshold = (n + 1) // 2
            tail = np.sum(nxt[threshold : n + 1])
            jers[idx // 2] = min(max(tail, 0.0), 1.0)
