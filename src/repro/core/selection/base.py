"""Shared types for jury-selection algorithms (paper Definition 9).

All selectors return a :class:`SelectionResult`, which carries the chosen
jury, its JER and cost, and algorithm-specific counters
(:class:`SelectionStats`) that the efficiency experiments (Figures 3(b) and
3(g)) use to account for lower-bound pruning behaviour.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.juror import Juror, Jury

__all__ = ["SelectionStats", "SelectionResult", "candidate_key"]


@dataclass
class SelectionStats:
    """Counters describing the work a selector performed.

    Attributes
    ----------
    juries_considered:
        Candidate juries examined (including pruned ones).
    jer_evaluations:
        Exact JER computations actually carried out.
    bound_checks:
        Paley-Zygmund lower-bound evaluations.
    pruned_by_bound:
        Candidate juries skipped because their lower bound already exceeded
        the incumbent JER.
    nodes_visited:
        Search-tree nodes (exact solvers only).
    elapsed_seconds:
        Wall-clock time, populated by the selector.
    """

    juries_considered: int = 0
    jer_evaluations: int = 0
    bound_checks: int = 0
    pruned_by_bound: int = 0
    nodes_visited: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class SelectionResult:
    """Outcome of a jury-selection algorithm.

    Attributes
    ----------
    jury:
        The selected jury (odd size, allowed under the model).
    jer:
        Jury Error Rate of ``jury``.
    algorithm:
        Human-readable algorithm identifier, e.g. ``"AltrALG"``.
    model:
        ``"AltrM"`` or ``"PayM"``.
    budget:
        The budget that constrained the selection (``None`` for AltrM).
    stats:
        Work counters for efficiency experiments.
    """

    jury: Jury
    jer: float
    algorithm: str
    model: str
    budget: float | None = None
    stats: SelectionStats = field(default_factory=SelectionStats)

    @property
    def size(self) -> int:
        """Size of the selected jury."""
        return self.jury.size

    @property
    def total_cost(self) -> float:
        """Total payment demanded by the selected jury."""
        return self.jury.total_cost

    @property
    def juror_ids(self) -> tuple[str, ...]:
        """Identifiers of the selected jurors."""
        return self.jury.juror_ids

    def summary(self) -> str:
        """One-line human-readable description of the outcome."""
        budget_txt = f", budget={self.budget:g}" if self.budget is not None else ""
        return (
            f"{self.algorithm}[{self.model}{budget_txt}]: size={self.size}, "
            f"JER={self.jer:.6g}, cost={self.total_cost:.6g}"
        )


def candidate_key(juror: Juror) -> tuple[float, str]:
    """Deterministic ordering key for candidates: (error rate, id).

    Sorting by error rate with the id as tie-breaker keeps selections
    reproducible when several jurors share an error rate.
    """
    return (juror.error_rate, juror.juror_id)


def sorted_candidates(candidates: Sequence[Juror]) -> list[Juror]:
    """Candidates sorted ascending by error rate (Lemma 3 ordering)."""
    return sorted(candidates, key=candidate_key)


def pool_fingerprint(ordered: Sequence[Juror]) -> str:
    """Content hash of an *ordered* candidate list.

    The batch engine (:mod:`repro.service`) keys its prefix-sweep cache on
    this fingerprint so that queries sharing a candidate pool are swept only
    once.  The hash covers the fields that influence any selector's output —
    id, error rate, and payment requirement, in order — so two pools collide
    only when they are interchangeable for every selection algorithm.
    """
    digest = hashlib.blake2b(digest_size=16)
    for juror in ordered:
        digest.update(
            f"{juror.juror_id}\x1f{juror.error_rate!r}\x1f{juror.requirement!r}\x1e".encode()
        )
    return digest.hexdigest()


__all__.extend(["sorted_candidates", "pool_fingerprint"])
