"""JSP under the Altruism model — paper Algorithm 3 (AltrALG).

Lemma 3 proves that, for a fixed jury size ``n``, the minimum-JER jury
consists of the ``n`` candidates with the smallest individual error rates.
AltrALG therefore sorts the candidate set ascending by error rate and scans
the odd-sized prefixes, keeping the prefix with the smallest JER.

Two execution strategies are provided:

``strategy="per-jury"``
    The paper's formulation: each prefix jury's JER is computed independently
    (via DP, Algorithm 1, or CBA, Algorithm 2), optionally skipping juries
    whose Paley-Zygmund lower bound (Lemma 2) already exceeds the incumbent.
    This is the variant the efficiency experiments (Fig. 3(b), 3(g)) time.
``strategy="sweep"``
    Our incremental optimisation: a single ``O(N^2)`` pass over the
    Carelessness pmf.  Since the plan-layer refactor this path is a thin
    wrapper over ``repro.plan.plan_query() -> execute_plan()`` — the same
    plan->operator pipeline the batch engine and the CLI use — so
    single-query and batched selection share the same vectorized kernel
    (:func:`repro.core.jer.batch_prefix_jer_sweep`) and produce
    bit-identical juries.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.core.bounds import paley_zygmund_lower_bound
from repro.core.jer import (
    PrefixJERSweeper,
    best_odd_prefix,
    jer_cba,
    jer_dp,
)
from repro.core.juror import Juror, Jury
from repro.core.selection.base import SelectionResult, SelectionStats, sorted_candidates
from repro.errors import EmptyCandidateSetError

__all__ = ["select_jury_altr", "altr_sweep_profile", "result_from_sweep_profile"]

_JER_BACKENDS = {"dp": jer_dp, "cba": jer_cba}


def select_jury_altr(
    candidates: Sequence[Juror],
    *,
    strategy: str = "sweep",
    jer_method: str = "cba",
    use_bound: bool = False,
    max_size: int | None = None,
) -> SelectionResult:
    """Solve JSP under AltrM exactly (paper Algorithm 3).

    Parameters
    ----------
    candidates:
        Candidate juror set ``S``.  Payment requirements are ignored —
        altruistic jurors participate for free (Definition 7).
    strategy:
        ``"sweep"`` (default, incremental ``O(N^2)``) or ``"per-jury"``
        (paper-faithful, recomputes each prefix JER).
    jer_method:
        JER backend for ``strategy="per-jury"``: ``"dp"`` (Algorithm 1) or
        ``"cba"`` (Algorithm 2).  Ignored by the sweep strategy.
    use_bound:
        Enable Paley-Zygmund lower-bound pruning (the Line 5-6 guard of
        Algorithm 3).  Only meaningful for ``strategy="per-jury"``.
    max_size:
        Optional cap on the jury size to consider (odd sizes up to this
        value).  Defaults to all of ``S``.

    Returns
    -------
    SelectionResult
        The minimum-JER jury, which by Lemma 3 is a prefix of the
        error-rate-sorted candidate list.

    Raises
    ------
    EmptyCandidateSetError
        If ``candidates`` is empty.
    InvalidJuryError
        If two candidates share a juror id (since the batch-service
        refactor, duplicate ids are rejected up front rather than only
        when both duplicates land in the selected jury).

    Examples
    --------
    >>> from repro.core.juror import jurors_from_arrays
    >>> cands = jurors_from_arrays([0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4])
    >>> result = select_jury_altr(cands)
    >>> result.size, round(result.jer, 4)
    (5, 0.0704)
    """
    if len(candidates) == 0:
        raise EmptyCandidateSetError("AltrALG requires at least one candidate juror")
    if strategy not in ("sweep", "per-jury"):
        raise ValueError(f"unknown strategy {strategy!r}; expected 'sweep' or 'per-jury'")

    if strategy == "sweep":
        # Thin wrapper over the plan path: plan_query normalises the query
        # and execute_plan runs the sweep operator on the columnar view —
        # the same path the batch engine and the CLI take, so single-query
        # and batched selection cannot drift apart.  A max_size cap
        # truncates the sorted pool *before* the sweep — with no pool
        # sharing here, sweeping beyond the cap would be wasted work.
        # Local import to avoid an import cycle (the plan layer's operator
        # table imports this module).
        from repro.plan import execute_plan, plan_query

        pool_members = candidates
        if max_size is not None:
            pool_members = sorted_candidates(candidates)[: max(max_size, 1)]

        plan = plan_query(
            candidates=tuple(pool_members),
            model="altr",
            max_size=max_size,
            task_id="<single>",
        )
        return execute_plan(plan)

    ordered = sorted_candidates(candidates)
    if max_size is not None:
        limit = min(max_size, len(ordered))
        ordered = ordered[:limit]
    eps = np.array([j.error_rate for j in ordered], dtype=np.float64)

    stats = SelectionStats()
    start = time.perf_counter()
    best_n, best_jer = _per_jury_best(eps, jer_method, use_bound, stats)
    stats.elapsed_seconds = time.perf_counter() - start

    jury = Jury(ordered[:best_n])
    return SelectionResult(
        jury=jury,
        jer=best_jer,
        algorithm="AltrALG" + ("+bound" if use_bound else ""),
        model="AltrM",
        budget=None,
        stats=stats,
    )


def result_from_sweep_profile(
    ordered: Sequence[Juror],
    ns: np.ndarray,
    jers: np.ndarray,
    *,
    max_size: int | None = None,
    elapsed_seconds: float = 0.0,
    best: tuple[int, float] | None = None,
) -> SelectionResult:
    """Build the AltrALG :class:`SelectionResult` from a sweep profile.

    ``ordered`` must be in Lemma 3 (ascending error-rate) order and
    ``(ns, jers)`` its odd-prefix JER profile as produced by
    :func:`repro.core.jer.prefix_jer_profile` or one row of
    :func:`repro.core.jer.batch_prefix_jer_sweep`.  The batch engine calls
    this for every query so cached profiles and freshly swept ones yield
    identical results.  ``best`` is the winning ``(size, jer)`` pair when
    the caller already ran :func:`~repro.core.jer.best_odd_prefix` (e.g. to
    materialise only the selected prefix); it must come from the same
    profile and ``max_size``.
    """
    best_n, best_jer = (
        best if best is not None else best_odd_prefix(ns, jers, max_size=max_size)
    )
    considered = int(np.sum(ns <= max_size)) if max_size is not None else int(ns.size)
    stats = SelectionStats(
        juries_considered=considered,
        jer_evaluations=considered,
        elapsed_seconds=elapsed_seconds,
    )
    return SelectionResult(
        jury=Jury(list(ordered[:best_n])),
        jer=best_jer,
        algorithm="AltrALG",
        model="AltrM",
        budget=None,
        stats=stats,
    )


def _per_jury_best(
    eps: np.ndarray,
    jer_method: str,
    use_bound: bool,
    stats: SelectionStats,
) -> tuple[int, float]:
    try:
        jer_func = _JER_BACKENDS[jer_method]
    except KeyError:
        raise ValueError(
            f"unknown jer_method {jer_method!r}; expected 'dp' or 'cba'"
        ) from None
    best_n, best_jer = -1, float("inf")
    for n in range(1, eps.size + 1, 2):
        stats.juries_considered += 1
        prefix = eps[:n]
        if use_bound and best_n > 0:
            stats.bound_checks += 1
            bound = paley_zygmund_lower_bound(prefix)
            if bound is not None and bound > best_jer:
                stats.pruned_by_bound += 1
                continue
        stats.jer_evaluations += 1
        value = jer_func(prefix)
        if value < best_jer - 1e-15:
            best_n, best_jer = n, value
    return best_n, best_jer


def altr_sweep_profile(candidates: Sequence[Juror]) -> list[tuple[int, float]]:
    """JER of every odd sorted-prefix jury — the full AltrALG search profile.

    Useful for plotting the "jury size vs JER" curve behind Figure 3(a): the
    returned list contains one ``(size, JER)`` pair per odd prefix of the
    error-rate-sorted candidates.
    """
    if len(candidates) == 0:
        raise EmptyCandidateSetError("cannot profile an empty candidate set")
    ordered = sorted_candidates(candidates)
    eps = [j.error_rate for j in ordered]
    return PrefixJERSweeper(eps).all_odd_prefixes()
