"""Lagrangian-relaxation heuristic for JSP on PayM — an extra baseline.

PayALG (paper Algorithm 4) greedily orders candidates by ``eps_i * r_i``.
A classic alternative for budgeted selection is to *relax* the budget into
the objective: for a multiplier ``lambda >= 0``, score every candidate by

    ``eps_i + lambda * r_i``

sort ascending, and evaluate the Lemma 3-style prefixes of that ordering
that fit the budget.  Small ``lambda`` trusts reliability, large ``lambda``
chases cheapness; sweeping a geometric grid of multipliers and keeping the
best feasible jury found explores the reliability/price trade-off more
systematically than a single fixed ordering.

The sweep subsumes two natural baselines as endpoints: ``lambda = 0`` is
"best jurors that fit" and ``lambda -> inf`` is "cheapest jurors that fit".
Like PayALG it is a heuristic (JSP on PayM is NP-hard, Lemma 4); the bench
suite compares all three selectors against the exact optimum.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro._validation import validate_budget
from repro.core.jer import PrefixJERSweeper
from repro.core.juror import Juror, Jury
from repro.core.selection.base import SelectionResult, SelectionStats
from repro.errors import EmptyCandidateSetError, InfeasibleSelectionError

__all__ = ["select_jury_lagrangian", "DEFAULT_MULTIPLIERS"]

#: Geometric multiplier grid from "ignore price" to "price is everything".
DEFAULT_MULTIPLIERS: tuple[float, ...] = (
    0.0, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0
)


def select_jury_lagrangian(
    candidates: Sequence[Juror],
    budget: float,
    *,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
) -> SelectionResult:
    """Budget-relaxation heuristic for JSP under PayM.

    For each multiplier, candidates are ordered by ``eps + lambda * r`` and
    the longest affordable odd prefixes are scored with the incremental JER
    sweeper; the best feasible jury across the whole sweep wins.

    Parameters
    ----------
    candidates:
        Candidate jurors with error rates and requirements.
    budget:
        Total payment budget ``B >= 0``.
    multipliers:
        The lambda grid to sweep (non-negative).

    Returns
    -------
    SelectionResult
        Best feasible jury found (odd size, cost within budget).

    Raises
    ------
    InfeasibleSelectionError
        When no candidate is individually affordable.

    Examples
    --------
    >>> from repro.core.juror import Juror
    >>> cands = [Juror(0.1, 0.2, juror_id="A"), Juror(0.2, 0.2, juror_id="B"),
    ...          Juror(0.2, 0.2, juror_id="C"), Juror(0.4, 0.1, juror_id="F")]
    >>> result = select_jury_lagrangian(cands, budget=1.0)
    >>> sorted(result.juror_ids)
    ['A', 'B', 'C']
    """
    if len(candidates) == 0:
        raise EmptyCandidateSetError(
            "Lagrangian selection requires at least one candidate juror"
        )
    b = validate_budget(budget)
    grid = [float(m) for m in multipliers]
    if not grid or any(m < 0.0 for m in grid):
        raise ValueError("multipliers must be a non-empty sequence of non-negatives")

    stats = SelectionStats()
    start = time.perf_counter()
    best_members: list[Juror] | None = None
    best_jer = float("inf")

    for lam in grid:
        ordered = sorted(
            candidates,
            key=lambda j: (j.error_rate + lam * j.requirement, j.juror_id),
        )
        # Walk the ordering, keeping the affordable prefix: a candidate that
        # busts the budget is skipped, later cheaper ones may still fit.
        affordable: list[Juror] = []
        cost = 0.0
        for juror in ordered:
            if cost + juror.requirement <= b + 1e-12:
                affordable.append(juror)
                cost += juror.requirement
        if not affordable:
            continue
        eps = np.array([j.error_rate for j in affordable])
        for n, jer in PrefixJERSweeper(eps):
            stats.juries_considered += 1
            stats.jer_evaluations += 1
            if jer < best_jer - 1e-15:
                best_jer = jer
                best_members = affordable[:n]

    stats.elapsed_seconds = time.perf_counter() - start
    if best_members is None:
        raise InfeasibleSelectionError(
            f"no candidate affordable within budget {b:g}"
        )
    return SelectionResult(
        jury=Jury(best_members),
        jer=best_jer,
        algorithm="Lagrangian",
        model="PayM",
        budget=b,
        stats=stats,
    )
