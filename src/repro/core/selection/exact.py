"""Exact (optimal) jury selection — the "OPT" baseline of paper Section 5.1.2.

JSP on PayM is NP-hard (paper Lemma 4), so the optimum is only computable for
small candidate sets.  The paper obtains ground truth "via enumerating all
possible combinations of jurors" at ``N = 22``; this module provides

``enumerate_optimal``
    A literal enumeration over all odd-sized, budget-feasible combinations.
    Exponential; guarded to ``N <= 20``.  Test oracle.  Since the plan-layer
    refactor the combinations are scored in *blocks*: candidate index blocks
    are gathered into ``(B, k)`` error-rate matrices and their JERs computed
    by the vectorized :func:`repro.core.jer.batch_jury_jer` kernel, which is
    bit-identical to the historical one-factor-at-a-time pmf extension.
``branch_and_bound_optimal``
    A depth-first search over the error-rate-sorted candidate list with three
    sound prunings that keep the search exact:

    * **count pruning** — the suffix cannot fill the remaining seats;
    * **cost pruning** — even the cheapest completion exceeds the budget;
    * **JER bound pruning** — by the monotonicity of JER in each individual
      error rate (paper Lemma 3's key step), completing the current partial
      jury with the *smallest-epsilon* remaining candidates lower-bounds the
      JER of every completion; subtrees whose bound cannot beat the incumbent
      are cut.  The completion pmf is one
      :func:`repro.core.jer.convolve_pmf` over the suffix candidate block.

Both return the same juries; the branch-and-bound handles the paper's
``N = 22`` workloads in seconds.  Either accepts a plain candidate sequence
or a columnar :class:`~repro.plan.view.PoolView` (the plan layer's pools).
"""

from __future__ import annotations

import itertools
import math
import time
from collections.abc import Sequence

import numpy as np

from repro._validation import validate_budget
from repro.core.jer import batch_jury_jer, convolve_pmf, extend_pmf, majority_threshold
from repro.core.poisson_binomial import tail_probability
from repro.core.juror import Juror, Jury
from repro.core.selection.base import SelectionResult, SelectionStats
from repro.errors import EmptyCandidateSetError, InfeasibleSelectionError

__all__ = [
    "enumerate_optimal",
    "enumerate_best_in_range",
    "branch_and_bound_optimal",
    "select_jury_optimal",
]

_ENUMERATION_LIMIT = 20

#: Combination-block size for the vectorized enumeration: combos are scored
#: in ``(<= _ENUM_BLOCK, k)`` batches through :func:`batch_jury_jer`.
_ENUM_BLOCK = 512


def _columns(candidates) -> tuple[np.ndarray, np.ndarray, Sequence[Juror]]:
    """Columnar (eps, reqs, ordered members) in Lemma 3 order.

    Since the plan-layer refactor this shares the PayM greedy's coercion, so
    plain sequences get the same up-front validation (Juror instances,
    unique ids) on every operator.
    """
    # Local import: the plan layer imports this module for its operators.
    from repro.plan.view import as_columns

    return as_columns(candidates)


def _result(
    members: Sequence[Juror],
    jer: float,
    algorithm: str,
    budget: float | None,
    stats: SelectionStats,
) -> SelectionResult:
    return SelectionResult(
        jury=Jury(list(members)),
        jer=jer,
        algorithm=algorithm,
        model="AltrM" if budget is None else "PayM",
        budget=budget,
        stats=stats,
    )


def enumerate_optimal(
    candidates,
    budget: float | None = None,
    *,
    max_size: int | None = None,
) -> SelectionResult:
    """Ground-truth JSP optimum by exhaustive enumeration (paper Section 5.1.2).

    Iterates every odd-sized combination of candidates, discards those whose
    total payment exceeds ``budget`` (when given), and returns the feasible
    jury with the smallest JER.  Ties break toward smaller juries, then
    lexicographic member ids, for determinism.

    Raises
    ------
    ValueError
        If the candidate count exceeds 20 (enumeration would be intractable).
    InfeasibleSelectionError
        If no odd-sized jury is affordable.
    """
    eps, reqs, ordered = _columns(candidates)
    n_total = int(eps.size)
    if n_total == 0:
        raise EmptyCandidateSetError("cannot enumerate an empty candidate set")
    if n_total > _ENUMERATION_LIMIT:
        raise ValueError(
            f"enumerate_optimal is limited to N <= {_ENUMERATION_LIMIT} candidates "
            f"(got {n_total}); use branch_and_bound_optimal instead"
        )
    b = math.inf if budget is None else validate_budget(budget)
    limit = n_total if max_size is None else min(max_size, n_total)

    stats = SelectionStats()
    start = time.perf_counter()
    best_indices: tuple[int, ...] | None = None
    best_jer = math.inf
    for k in range(1, limit + 1, 2):
        combos = itertools.combinations(range(n_total), k)
        while True:
            block = list(itertools.islice(combos, _ENUM_BLOCK))
            if not block:
                break
            idx = np.array(block, dtype=np.intp)
            stats.juries_considered += idx.shape[0]
            # Sequential left-to-right accumulation, matching the scalar
            # ``sum(j.requirement for j in combo)`` rounding exactly.
            costs = np.zeros(idx.shape[0], dtype=np.float64)
            for col in range(k):
                costs += reqs[idx[:, col]]
            feasible = np.nonzero(costs <= b)[0]
            if feasible.size == 0:
                continue
            chosen = idx[feasible]
            jers = batch_jury_jer(eps[chosen])
            stats.jer_evaluations += chosen.shape[0]
            for row in range(chosen.shape[0]):
                combo_indices = tuple(int(i) for i in chosen[row])
                jer = float(jers[row])
                if _improves_indices(jer, combo_indices, best_jer, best_indices, ordered):
                    best_jer, best_indices = jer, combo_indices
    stats.elapsed_seconds = time.perf_counter() - start

    if best_indices is None:
        raise InfeasibleSelectionError(
            f"no odd-sized jury is affordable within budget {b:g}"
        )
    members = tuple(ordered[i] for i in best_indices)
    return _result(members, best_jer, "OPT-enumerate", budget, stats)


def enumerate_best_in_range(
    candidates,
    budget: float | None = None,
    *,
    max_size: int | None = None,
    first_lo: int = 0,
    first_hi: int | None = None,
) -> tuple[tuple[int, ...] | None, float, SelectionStats]:
    """Best feasible jury whose *smallest* member index lies in ``[first_lo, first_hi)``.

    Range-partitioned slice of :func:`enumerate_optimal` for the cost-aware
    shard scheduler: a heavy exact-enumeration query is split into candidate
    ranges, each shard enumerates only the combinations whose first (lowest)
    candidate index falls inside its range, and the parent folds the partial
    winners back together.  Because the ranges partition the first-index axis,
    the union of the per-range search spaces is exactly the full enumeration's
    search space, and because both this function and the parent's merge use
    :func:`_improves_indices`' comparator (JER epsilon, then size, then
    lexicographic member ids), the merged winner is bit-identical to
    :func:`enumerate_optimal`'s — pinned by the scheduler's split suite.

    Returns ``(best_indices, best_jer, stats)`` with ``best_indices=None``
    when no feasible jury starts in the range (never raises for mere
    range-infeasibility; the parent raises once all ranges come back empty).
    Cost accumulation and JER evaluation go through the same block-vectorized
    kernels as :func:`enumerate_optimal`, so per-combination arithmetic — and
    the summed ``juries_considered``/``jer_evaluations`` counters across a
    partition — match the unsplit run exactly.
    """
    eps, reqs, ordered = _columns(candidates)
    n_total = int(eps.size)
    if n_total == 0:
        raise EmptyCandidateSetError("cannot enumerate an empty candidate set")
    if n_total > _ENUMERATION_LIMIT:
        raise ValueError(
            f"enumerate_optimal is limited to N <= {_ENUMERATION_LIMIT} candidates "
            f"(got {n_total}); use branch_and_bound_optimal instead"
        )
    b = math.inf if budget is None else validate_budget(budget)
    limit = n_total if max_size is None else min(max_size, n_total)
    lo = max(0, int(first_lo))
    hi = n_total if first_hi is None else min(int(first_hi), n_total)

    stats = SelectionStats()
    start = time.perf_counter()
    best_indices: tuple[int, ...] | None = None
    best_jer = math.inf
    for k in range(1, limit + 1, 2):
        for first in range(lo, hi):
            if n_total - first < k:
                break
            if k == 1:
                combos = iter(((first,),))
            else:
                combos = (
                    (first,) + rest
                    for rest in itertools.combinations(range(first + 1, n_total), k - 1)
                )
            while True:
                block = list(itertools.islice(combos, _ENUM_BLOCK))
                if not block:
                    break
                idx = np.array(block, dtype=np.intp)
                stats.juries_considered += idx.shape[0]
                # Sequential left-to-right accumulation, matching
                # enumerate_optimal (and the scalar chain) exactly.
                costs = np.zeros(idx.shape[0], dtype=np.float64)
                for col in range(k):
                    costs += reqs[idx[:, col]]
                feasible = np.nonzero(costs <= b)[0]
                if feasible.size == 0:
                    continue
                chosen = idx[feasible]
                jers = batch_jury_jer(eps[chosen])
                stats.jer_evaluations += chosen.shape[0]
                for row in range(chosen.shape[0]):
                    combo_indices = tuple(int(i) for i in chosen[row])
                    jer = float(jers[row])
                    if _improves_indices(jer, combo_indices, best_jer, best_indices, ordered):
                        best_jer, best_indices = jer, combo_indices
    stats.elapsed_seconds = time.perf_counter() - start
    return best_indices, best_jer, stats


def _improves_indices(
    jer: float,
    indices: tuple[int, ...],
    best_jer: float,
    best_indices: tuple[int, ...] | None,
    ordered: Sequence[Juror],
) -> bool:
    """Index-tuple counterpart of :func:`_improves` (same tie-break rule)."""
    if jer < best_jer - 1e-15:
        return True
    if abs(jer - best_jer) <= 1e-15 and best_indices is not None:
        if len(indices) != len(best_indices):
            return len(indices) < len(best_indices)
        return tuple(ordered[i].juror_id for i in indices) < tuple(
            ordered[i].juror_id for i in best_indices
        )
    return False


def _improves(
    jer: float,
    members: tuple[Juror, ...],
    best_jer: float,
    best_members: tuple[Juror, ...] | None,
) -> bool:
    if jer < best_jer - 1e-15:
        return True
    if abs(jer - best_jer) <= 1e-15 and best_members is not None:
        if len(members) != len(best_members):
            return len(members) < len(best_members)
        return tuple(j.juror_id for j in members) < tuple(
            j.juror_id for j in best_members
        )
    return False


def branch_and_bound_optimal(
    candidates,
    budget: float | None = None,
    *,
    max_size: int | None = None,
    use_jer_bound: bool = True,
) -> SelectionResult:
    """Exact JSP optimum via depth-first branch and bound.

    Equivalent to :func:`enumerate_optimal` but with sound pruning, making the
    paper's ``N = 22`` ground-truth computation practical.  Set
    ``use_jer_bound=False`` to disable the monotonicity bound (cost and count
    pruning remain) — useful for ablation benchmarks.
    """
    eps, reqs, ordered = _columns(candidates)
    if eps.size == 0:
        raise EmptyCandidateSetError("cannot optimise an empty candidate set")
    b = math.inf if budget is None else validate_budget(budget)
    n_total = int(eps.size)
    limit = n_total if max_size is None else min(max_size, n_total)

    # cheapest_sum[i][m]: minimum total requirement of any m candidates taken
    # from the suffix starting at index i.  Used for cost pruning.
    cheapest_sum = _suffix_cheapest_sums(reqs)

    stats = SelectionStats()
    start = time.perf_counter()
    best: dict[str, object] = {"jer": math.inf, "members": None}

    for k in range(1, limit + 1, 2):
        threshold = majority_threshold(k)
        _bb_search(
            ordered,
            eps,
            reqs,
            cheapest_sum,
            k,
            threshold,
            b,
            use_jer_bound,
            best,
            stats,
        )
    stats.elapsed_seconds = time.perf_counter() - start

    if best["members"] is None:
        raise InfeasibleSelectionError(
            f"no odd-sized jury is affordable within budget {b:g}"
        )
    return _result(
        best["members"],  # type: ignore[arg-type]
        float(best["jer"]),  # type: ignore[arg-type]
        "OPT-branch-and-bound",
        budget,
        stats,
    )


def _suffix_cheapest_sums(reqs: np.ndarray) -> list[np.ndarray]:
    """``cheapest[i][m]`` = cheapest way to buy ``m`` jurors from suffix ``i``."""
    n = reqs.size
    table: list[np.ndarray] = []
    for i in range(n + 1):
        suffix = np.sort(reqs[i:])
        sums = np.concatenate(([0.0], np.cumsum(suffix)))
        table.append(sums)
    return table


def _bb_search(
    ordered: Sequence[Juror],
    eps: np.ndarray,
    reqs: np.ndarray,
    cheapest_sum: list[np.ndarray],
    k: int,
    threshold: int,
    budget: float,
    use_jer_bound: bool,
    best: dict[str, object],
    stats: SelectionStats,
) -> None:
    n_total = eps.size
    chosen: list[int] = []

    def dfs(index: int, cost: float, pmf: np.ndarray) -> None:
        stats.nodes_visited += 1
        picked = len(chosen)
        if picked == k:
            if cost > budget + 1e-12:
                return
            stats.jer_evaluations += 1
            jer = tail_probability(pmf, threshold)
            members = tuple(ordered[i] for i in chosen)
            if _improves(jer, members, float(best["jer"]), best["members"]):  # type: ignore[arg-type]
                best["jer"], best["members"] = jer, members
            return
        need = k - picked
        if index >= n_total or n_total - index < need:
            return
        # Cost pruning: even the cheapest completion busts the budget.
        if cost + cheapest_sum[index][need] > budget + 1e-12:
            return
        # JER bound pruning: completing with the smallest-epsilon remaining
        # candidates (the immediate suffix, since eps is sorted ascending)
        # lower-bounds every completion's JER by coordinate-wise monotonicity.
        # The whole completion block is folded in with one convolve_pmf.
        if use_jer_bound and best["members"] is not None:
            stats.bound_checks += 1
            bound_pmf = convolve_pmf(pmf, eps[index : index + need])
            if tail_probability(bound_pmf, threshold) >= float(best["jer"]) - 1e-15:
                stats.pruned_by_bound += 1
                return
        # Branch 1: choose candidate ``index``.
        chosen.append(index)
        dfs(index + 1, cost + reqs[index], extend_pmf(pmf, eps[index]))
        chosen.pop()
        # Branch 2: skip candidate ``index``.
        dfs(index + 1, cost, pmf)

    dfs(0, 0.0, np.ones(1, dtype=np.float64))


def select_jury_optimal(
    candidates,
    budget: float | None = None,
    *,
    method: str = "auto",
    max_size: int | None = None,
) -> SelectionResult:
    """Exact JSP optimum through the planner's operator dispatch.

    Parameters
    ----------
    candidates:
        Candidate juror set (sequence or :class:`~repro.plan.view.PoolView`).
    budget:
        PayM budget, or ``None`` for the AltrM (unconstrained) optimum.
    method:
        ``"enumerate"``, ``"branch-and-bound"``, or ``"auto"`` (default):
        the cost model enumerates while the budget-affordable candidate
        count stays within :data:`repro.plan.cost.ENUMERATION_CROSSOVER`
        and branches-and-bounds beyond.
    max_size:
        Optional cap on jury size.
    """
    # Local import: the plan layer imports this module for its operators.
    from repro.plan import execute_plan, plan_query

    source = candidates if hasattr(candidates, "eps") else tuple(candidates)
    if len(source) == 0:
        raise EmptyCandidateSetError("cannot optimise an empty candidate set")
    plan = plan_query(
        candidates=None if hasattr(source, "eps") else source,
        pool=source if hasattr(source, "eps") else None,
        model="exact",
        budget=budget,
        method=method,
        max_size=max_size,
        task_id="<single>",
    )
    return execute_plan(plan)
