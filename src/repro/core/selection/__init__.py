"""Jury-selection algorithms for the Jury Selection Problem (paper Section 3).

Public entry points:

* :func:`~repro.core.selection.altr.select_jury_altr` — exact AltrM solver
  (paper Algorithm 3).
* :func:`~repro.core.selection.pay.select_jury_pay` — PayM greedy heuristic
  (paper Algorithm 4).
* :func:`~repro.core.selection.exact.select_jury_optimal` — exact PayM/AltrM
  optimum (enumeration or branch-and-bound), the paper's "OPT" baseline.
"""

from repro.core.selection.altr import altr_sweep_profile, select_jury_altr
from repro.core.selection.base import SelectionResult, SelectionStats, sorted_candidates
from repro.core.selection.exact import (
    branch_and_bound_optimal,
    enumerate_optimal,
    select_jury_optimal,
)
from repro.core.selection.lagrangian import select_jury_lagrangian
from repro.core.selection.pay import select_jury_pay

__all__ = [
    "SelectionResult",
    "SelectionStats",
    "sorted_candidates",
    "select_jury_altr",
    "altr_sweep_profile",
    "select_jury_pay",
    "select_jury_lagrangian",
    "select_jury_optimal",
    "enumerate_optimal",
    "branch_and_bound_optimal",
]
