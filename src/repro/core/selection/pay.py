"""JSP under the Pay-as-you-go model — paper Algorithm 4 (PayALG).

JSP on PayM is NP-hard (paper Lemma 4, by reduction from the n-th order
Knapsack Problem), so the paper proposes a greedy heuristic:

1. sort candidates ascending by ``eps_i * r_i`` (cheap *and* reliable first);
2. seed the jury with the first affordable candidate;
3. scan the remaining candidates, buffering one as a *pair partner*; whenever
   a second affordable candidate is found, admit the pair only if the
   enlarged (still odd-sized) jury improves the JER.

Pairs keep the size odd, which Majority Voting requires.  This module
implements the paper's first-fit pairing faithfully (``variant="paper"``)
plus a steepest-descent variant used for ablations (``variant="improved"``)
that, at each step, admits the affordable pair with the best JER instead of
the first one that helps.

Since the plan-layer refactor the greedy is *columnar*: it runs on the
struct-of-arrays :class:`~repro.plan.view.PoolView` (error-rate and
requirement vectors in Lemma 3 order), maintains the incumbent jury's
Carelessness pmf incrementally, and scores whole blocks of candidate pair
enlargements at once with :func:`repro.core.jer.extend_pmf_block` — an
``O(|jury|)`` vectorized trial instead of the historical ``O(|jury|^2)``
per-trial dynamic program.  Decisions are made on exactly the values the
block kernel produces, so the scan admits the same pairs a scalar rerun of
the same arithmetic would.

.. note::
   Trial JERs are computed by exact sequential convolution at *every* jury
   size.  The pre-refactor loop dispatched each trial through
   ``jury_error_rate(..., method="auto")``, which switched to the FFT-based
   CBA backend once the trial jury reached 256 members; the sequential
   chain is the numerically tighter of the two (it is the ``pmf_dp``
   arithmetic), so in that large-jury regime a knife-edge ``trial <=
   incumbent`` admission can resolve differently than the seed's
   FFT-rounded value did.  Below the 256-juror crossover — which includes
   every oracle suite and the paper's workloads — decisions and selections
   match the pre-refactor path exactly.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro._validation import validate_budget
from repro.core import kernels as _kernels
from repro.core.jer import JER_IMPROVEMENT_EPS, extend_pmf, extend_pmf_block
from repro.core.juror import Juror, Jury
from repro.core.selection.base import SelectionResult, SelectionStats
from repro.errors import EmptyCandidateSetError, InfeasibleSelectionError

__all__ = ["select_jury_pay", "run_pay_greedy"]

#: Candidate-block size for the vectorized pair trials.  Bounds the wasted
#: work past an admission (trials computed for candidates the scalar scan
#: would not have reached yet) while keeping the 2-D kernel busy.
TRIAL_BLOCK = 128


def select_jury_pay(
    candidates: Sequence[Juror],
    budget: float,
    *,
    variant: str = "paper",
) -> SelectionResult:
    """Greedy heuristic for JSP under PayM (paper Algorithm 4).

    Parameters
    ----------
    candidates:
        Candidate juror set ``S`` with error rates and payment requirements.
    budget:
        Total payment budget ``B >= 0`` (Definition 8).
    variant:
        ``"paper"`` reproduces Algorithm 4's first-fit pairing;
        ``"improved"`` is a steepest-descent ablation that evaluates every
        affordable pair at each enlargement step and admits the best one.

    Returns
    -------
    SelectionResult
        An odd-sized jury whose total cost does not exceed ``budget``.

    Raises
    ------
    InfeasibleSelectionError
        When not even the single cheapest candidate fits in the budget.
    InvalidJuryError
        If two candidates share a juror id (since the batch-service
        refactor, duplicate ids are rejected up front).

    Examples
    --------
    The motivating example of Figure 1 / Table 2: with D and E too expensive,
    the greedy settles on the affordable {A, B, C} jury rather than padding
    with the unreliable F and G:

    >>> from repro.core.juror import Juror
    >>> cands = [Juror(0.1, 0.2, juror_id="A"), Juror(0.2, 0.2, juror_id="B"),
    ...          Juror(0.2, 0.2, juror_id="C"), Juror(0.3, 0.4, juror_id="D"),
    ...          Juror(0.3, 0.65, juror_id="E"), Juror(0.4, 0.1, juror_id="F"),
    ...          Juror(0.4, 0.1, juror_id="G")]
    >>> result = select_jury_pay(cands, budget=1.0)
    >>> sorted(result.juror_ids), round(result.jer, 3)
    (['A', 'B', 'C'], 0.072)
    """
    # Thin wrapper over the plan path: plan_query normalises the query and
    # the cost model picks the operator, which dispatches straight back to
    # :func:`run_pay_greedy` below.  Local import to avoid an import cycle
    # (the plan layer imports this module for its operator table).
    from repro.plan import execute_plan, plan_query

    if len(candidates) == 0:
        raise EmptyCandidateSetError("PayALG requires at least one candidate juror")
    plan = plan_query(
        candidates=tuple(candidates),
        model="pay",
        budget=budget,
        variant=variant,
        task_id="<single>",
    )
    return execute_plan(plan)


def run_pay_greedy(
    candidates,
    budget: float,
    *,
    variant: str = "paper",
    backend: str | None = None,
) -> SelectionResult:
    """Execute the PayALG greedy on columnar candidate data.

    This is the physical operator behind every PayM query — scalar, batched
    and served.  ``candidates`` may be a
    :class:`~repro.plan.view.PoolView` (the plan layer's columnar pools) or
    a plain sequence of :class:`Juror` objects (validated and decomposed
    here).  ``backend`` threads a plan's kernel-backend choice into the
    pairing-scan dispatch (``None`` = session mode + cost-model crossover);
    compiled backends run the whole paper scan in one call, bit-identical
    to the blocked NumPy scan by the activation self-check.
    """
    eps_sorted, reqs_sorted, members = _columns(candidates)
    b = validate_budget(budget)
    if variant not in ("paper", "improved"):
        raise ValueError(f"unknown variant {variant!r}; expected 'paper' or 'improved'")

    # Paper Algorithm 4, Line 1: ascending ``eps_i * r_i`` order.  The
    # columns arrive in Lemma 3 order (error rate, id), so a *stable* sort
    # on the product key reproduces the historical (eps*r, eps, id) tuple
    # sort exactly.
    order = np.argsort(eps_sorted * reqs_sorted, kind="stable")
    g_eps = eps_sorted[order]
    g_req = reqs_sorted[order]

    stats = SelectionStats()
    start = time.perf_counter()

    # Lines 3-6: seed with the first affordable candidate.
    affordable = np.nonzero(g_req <= b)[0]
    if affordable.size == 0:
        raise InfeasibleSelectionError(
            f"no candidate affordable within budget {b:g}; cheapest requirement is "
            f"{float(g_req.min()):g}"
        )
    seed_index = int(affordable[0])
    selected = [seed_index]
    accumulated = float(g_req[seed_index])
    pmf = extend_pmf(np.ones(1, dtype=np.float64), g_eps[seed_index])
    current_jer = _tail(pmf, 1)
    stats.jer_evaluations += 1

    if variant == "paper":
        impl = _kernels.backend_for("pay_scan", int(g_eps.size), forced=backend)
        if impl.compiled:
            pairs, accumulated, current_jer, considered, evals = impl.pay_scan(
                g_eps, g_req, b, seed_index + 1, accumulated, pmf, current_jer
            )
            selected += [int(p) for p in pairs]
            stats.juries_considered += considered
            stats.jer_evaluations += evals
        else:
            selected, accumulated, current_jer = _paper_pairing(
                selected, g_eps, g_req, seed_index + 1, accumulated, b,
                pmf, current_jer, stats,
            )
    else:
        selected, accumulated, current_jer = _improved_pairing(
            selected, g_eps, g_req, seed_index + 1, accumulated, b,
            pmf, current_jer, stats,
        )

    stats.elapsed_seconds = time.perf_counter() - start
    jury = Jury([members[order[pos]] for pos in selected])
    return SelectionResult(
        jury=jury,
        jer=float(current_jer),
        algorithm="PayALG" if variant == "paper" else "PayALG-improved",
        model="PayM",
        budget=b,
        stats=stats,
    )


def _columns(candidates) -> tuple[np.ndarray, np.ndarray, Sequence[Juror]]:
    """Columnar (eps, reqs, members) in Lemma 3 order from either source."""
    # Local import: the plan layer imports this module for its operators.
    from repro.plan.view import as_columns

    return as_columns(candidates)


def _tail(pmf: np.ndarray, threshold: int) -> float:
    """``Pr(C >= threshold)`` of a full-width pmf, clipped into [0, 1]."""
    return min(max(float(np.sum(pmf[threshold:])), 0.0), 1.0)


def _block_trial_jers(
    base: np.ndarray, trial_eps: np.ndarray, threshold: int
) -> tuple[np.ndarray, np.ndarray]:
    """JER of ``base`` enlarged by each candidate in ``trial_eps``.

    Returns ``(jers, rows)``: the clipped tail probabilities and the
    extended pmf rows themselves (the admitted row becomes the next
    incumbent pmf, so trial and admission share one arithmetic).

    Dispatches the fused extend+score kernel through the backend registry;
    compiled backends produce bit-identical rows *and* tails (same
    pairwise tail summation), enforced by the activation self-check.
    """
    impl = _kernels.backend_for(
        "score_block", int(trial_eps.size) * (int(base.size) + 1)
    )
    if impl.compiled:
        return impl.score_block(base, trial_eps, threshold)
    rows = extend_pmf_block(base, trial_eps)
    tails = np.sum(rows[:, threshold:], axis=1)
    return np.clip(tails, 0.0, 1.0), rows


def _paper_pairing(
    selected: list[int],
    g_eps: np.ndarray,
    g_req: np.ndarray,
    scan_from: int,
    accumulated: float,
    budget: float,
    pmf: np.ndarray,
    current_jer: float,
    stats: SelectionStats,
) -> tuple[list[int], float, float]:
    """Lines 8-16 of paper Algorithm 4: first-fit pair admission.

    The scan is the paper's single forward pass; only the JER trials are
    restructured, from one ``O(|jury|^2)`` dynamic program per candidate to
    one ``O(block * |jury|)`` fan-out convolution per candidate block.
    """
    n = g_eps.size
    i = scan_from
    partner = -1
    while i < n:
        if partner < 0:
            # No pair partner buffered: the next affordable candidate
            # becomes it (unaffordable ones are passed over, as in the
            # scalar scan — the budget only ever tightens).
            if g_req[i] + accumulated <= budget:
                partner = i
            i += 1
            continue
        block = slice(i, min(n, i + TRIAL_BLOCK))
        enlarged_costs = g_req[block] + g_req[partner] + accumulated
        ok = np.nonzero(enlarged_costs <= budget)[0]
        if ok.size == 0:
            i = block.stop
            continue
        base2 = extend_pmf(pmf, g_eps[partner])
        threshold = (len(selected) + 3) // 2
        trial_jers, rows = _block_trial_jers(base2, g_eps[block][ok], threshold)
        admitted = -1
        for trial_pos in range(ok.size):
            stats.juries_considered += 1
            stats.jer_evaluations += 1
            if trial_jers[trial_pos] <= current_jer:
                admitted = trial_pos
                break
        if admitted < 0:
            i = block.stop
            continue
        q = i + int(ok[admitted])
        selected += [partner, q]
        accumulated = float(g_req[q] + g_req[partner] + accumulated)
        pmf = rows[admitted].copy()
        current_jer = float(trial_jers[admitted])
        partner = -1
        i = q + 1
    return selected, accumulated, current_jer


def _improved_pairing(
    selected: list[int],
    g_eps: np.ndarray,
    g_req: np.ndarray,
    scan_from: int,
    accumulated: float,
    budget: float,
    pmf: np.ndarray,
    current_jer: float,
    stats: SelectionStats,
) -> tuple[list[int], float, float]:
    """Steepest-descent ablation: repeatedly admit the best affordable pair.

    At every step, all affordable two-candidate enlargements of the current
    jury are scored (block-wise: one partner extension, then one fan-out
    convolution over the remaining candidates) and the one with the lowest
    JER is admitted, provided it improves on the incumbent.  Quadratic in
    the candidate count per step but strictly dominates the first-fit rule
    in solution quality.
    """
    pool = list(range(scan_from, g_eps.size))
    improved = True
    while improved:
        improved = False
        best_pair: tuple[int, int] | None = None
        best_jer = current_jer
        best_pmf: np.ndarray | None = None
        threshold = (len(selected) + 3) // 2
        for a_idx, a in enumerate(pool):
            cost_a = g_req[a]
            if accumulated + cost_a > budget:
                continue
            rest = np.asarray(pool[a_idx + 1 :], dtype=np.intp)
            if rest.size == 0:
                continue
            costs = accumulated + cost_a + g_req[rest]
            ok = np.nonzero(costs <= budget)[0]
            if ok.size == 0:
                continue
            base_a = extend_pmf(pmf, g_eps[a])
            trial_jers, rows = _block_trial_jers(base_a, g_eps[rest[ok]], threshold)
            for trial_pos in range(ok.size):
                stats.juries_considered += 1
                stats.jer_evaluations += 1
                if trial_jers[trial_pos] < best_jer - JER_IMPROVEMENT_EPS:
                    best_jer = float(trial_jers[trial_pos])
                    best_pair = (a_idx, a_idx + 1 + int(ok[trial_pos]))
                    best_pmf = rows[trial_pos]
        if best_pair is not None:
            a_idx, b_idx = best_pair
            a, b_pos = pool[a_idx], pool[b_idx]
            selected += [a, b_pos]
            accumulated += float(g_req[a] + g_req[b_pos])
            current_jer = best_jer
            pmf = best_pmf.copy()
            # Remove the admitted pair from the pool (higher index first).
            pool.pop(b_idx)
            pool.pop(a_idx)
            improved = True
    return selected, accumulated, current_jer
