"""JSP under the Pay-as-you-go model — paper Algorithm 4 (PayALG).

JSP on PayM is NP-hard (paper Lemma 4, by reduction from the n-th order
Knapsack Problem), so the paper proposes a greedy heuristic:

1. sort candidates ascending by ``eps_i * r_i`` (cheap *and* reliable first);
2. seed the jury with the first affordable candidate;
3. scan the remaining candidates, buffering one as a *pair partner*; whenever
   a second affordable candidate is found, admit the pair only if the
   enlarged (still odd-sized) jury improves the JER.

Pairs keep the size odd, which Majority Voting requires.  This module
implements the paper's first-fit pairing faithfully (``variant="paper"``)
plus a steepest-descent variant used for ablations (``variant="improved"``)
that, at each step, admits the affordable pair with the best JER instead of
the first one that helps.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro._validation import validate_budget
from repro.core.jer import jury_error_rate
from repro.core.juror import Juror, Jury
from repro.core.selection.base import SelectionResult, SelectionStats
from repro.errors import EmptyCandidateSetError, InfeasibleSelectionError

__all__ = ["select_jury_pay", "run_pay_greedy"]


def _greedy_order(candidates: Sequence[Juror]) -> list[Juror]:
    """Paper Algorithm 4, Line 1: ascending ``eps_i * r_i`` order.

    Ties break toward the lower error rate, then the id, so runs are
    deterministic.
    """
    return sorted(
        candidates,
        key=lambda j: (j.cost_quality_key, j.error_rate, j.juror_id),
    )


def select_jury_pay(
    candidates: Sequence[Juror],
    budget: float,
    *,
    variant: str = "paper",
) -> SelectionResult:
    """Greedy heuristic for JSP under PayM (paper Algorithm 4).

    Parameters
    ----------
    candidates:
        Candidate juror set ``S`` with error rates and payment requirements.
    budget:
        Total payment budget ``B >= 0`` (Definition 8).
    variant:
        ``"paper"`` reproduces Algorithm 4's first-fit pairing;
        ``"improved"`` is a steepest-descent ablation that evaluates every
        affordable pair at each enlargement step and admits the best one.

    Returns
    -------
    SelectionResult
        An odd-sized jury whose total cost does not exceed ``budget``.

    Raises
    ------
    InfeasibleSelectionError
        When not even the single cheapest candidate fits in the budget.
    InvalidJuryError
        If two candidates share a juror id (since the batch-service
        refactor, duplicate ids are rejected up front).

    Examples
    --------
    The motivating example of Figure 1 / Table 2: with D and E too expensive,
    the greedy settles on the affordable {A, B, C} jury rather than padding
    with the unreliable F and G:

    >>> from repro.core.juror import Juror
    >>> cands = [Juror(0.1, 0.2, juror_id="A"), Juror(0.2, 0.2, juror_id="B"),
    ...          Juror(0.2, 0.2, juror_id="C"), Juror(0.3, 0.4, juror_id="D"),
    ...          Juror(0.3, 0.65, juror_id="E"), Juror(0.4, 0.1, juror_id="F"),
    ...          Juror(0.4, 0.1, juror_id="G")]
    >>> result = select_jury_pay(cands, budget=1.0)
    >>> sorted(result.juror_ids), round(result.jer, 3)
    (['A', 'B', 'C'], 0.072)
    """
    # Thin wrapper over the batch path: a fresh engine with a batch of one,
    # which dispatches back to :func:`run_pay_greedy` below.  Keeping the
    # greedy core here (and engine-callable) avoids an import cycle while
    # guaranteeing single-query and batched PayM selection share one
    # implementation.
    from repro.service.batch import BatchSelectionEngine, SelectionQuery

    engine = BatchSelectionEngine(cache_size=0)
    return engine.select(
        SelectionQuery(
            task_id="<single>",
            candidates=tuple(candidates),
            model="pay",
            budget=budget,
            variant=variant,
        )
    )


def run_pay_greedy(
    candidates: Sequence[Juror],
    budget: float,
    *,
    variant: str = "paper",
) -> SelectionResult:
    """Execute the PayALG greedy (the former ``select_jury_pay`` body).

    This is the engine-facing entry point: :mod:`repro.service.batch` calls
    it directly for every PayM query in a batch.
    """
    if len(candidates) == 0:
        raise EmptyCandidateSetError("PayALG requires at least one candidate juror")
    b = validate_budget(budget)
    if variant not in ("paper", "improved"):
        raise ValueError(f"unknown variant {variant!r}; expected 'paper' or 'improved'")

    ordered = _greedy_order(candidates)
    stats = SelectionStats()
    start = time.perf_counter()

    # Lines 3-6: seed with the first affordable candidate.
    seed_index = next(
        (i for i, juror in enumerate(ordered) if juror.requirement <= b), None
    )
    if seed_index is None:
        raise InfeasibleSelectionError(
            f"no candidate affordable within budget {b:g}; cheapest requirement is "
            f"{min(j.requirement for j in ordered):g}"
        )

    selected = [ordered[seed_index]]
    accumulated = ordered[seed_index].requirement
    current_jer = jury_error_rate([j.error_rate for j in selected])
    stats.jer_evaluations += 1

    remaining = ordered[seed_index + 1 :]
    if variant == "paper":
        selected, accumulated, current_jer = _paper_pairing(
            selected, remaining, accumulated, b, current_jer, stats
        )
    else:
        selected, accumulated, current_jer = _improved_pairing(
            selected, remaining, accumulated, b, current_jer, stats
        )

    stats.elapsed_seconds = time.perf_counter() - start
    jury = Jury(selected)
    return SelectionResult(
        jury=jury,
        jer=current_jer,
        algorithm="PayALG" if variant == "paper" else "PayALG-improved",
        model="PayM",
        budget=b,
        stats=stats,
    )


def _paper_pairing(
    selected: list[Juror],
    remaining: Sequence[Juror],
    accumulated: float,
    budget: float,
    current_jer: float,
    stats: SelectionStats,
) -> tuple[list[Juror], float, float]:
    """Lines 8-16 of paper Algorithm 4: first-fit pair admission."""
    pair_partner: Juror | None = None
    for juror in remaining:
        if pair_partner is None:
            if juror.requirement + accumulated <= budget:
                pair_partner = juror
            continue
        enlarged_cost = juror.requirement + pair_partner.requirement + accumulated
        if enlarged_cost > budget:
            continue
        stats.juries_considered += 1
        stats.jer_evaluations += 1
        trial_eps = [j.error_rate for j in selected] + [
            pair_partner.error_rate,
            juror.error_rate,
        ]
        trial_jer = jury_error_rate(trial_eps)
        if trial_jer <= current_jer:
            selected = selected + [pair_partner, juror]
            accumulated = enlarged_cost
            current_jer = trial_jer
            pair_partner = None
    return selected, accumulated, current_jer


def _improved_pairing(
    selected: list[Juror],
    remaining: Sequence[Juror],
    accumulated: float,
    budget: float,
    current_jer: float,
    stats: SelectionStats,
) -> tuple[list[Juror], float, float]:
    """Steepest-descent ablation: repeatedly admit the best affordable pair.

    At every step, all affordable two-candidate enlargements of the current
    jury are scored and the one with the lowest JER is admitted, provided it
    improves on the incumbent.  Quadratic in the candidate count per step but
    strictly dominates the first-fit rule in solution quality.
    """
    pool = list(remaining)
    improved = True
    while improved:
        improved = False
        best_pair: tuple[int, int] | None = None
        best_jer = current_jer
        base_eps = [j.error_rate for j in selected]
        for a in range(len(pool)):
            cost_a = pool[a].requirement
            if accumulated + cost_a > budget:
                continue
            for b_idx in range(a + 1, len(pool)):
                cost = accumulated + cost_a + pool[b_idx].requirement
                if cost > budget:
                    continue
                stats.juries_considered += 1
                stats.jer_evaluations += 1
                trial = jury_error_rate(
                    base_eps + [pool[a].error_rate, pool[b_idx].error_rate]
                )
                if trial < best_jer - 1e-15:
                    best_jer = trial
                    best_pair = (a, b_idx)
        if best_pair is not None:
            a, b_idx = best_pair
            juror_b = pool[b_idx]
            juror_a = pool[a]
            selected = selected + [juror_a, juror_b]
            accumulated += juror_a.requirement + juror_b.requirement
            current_jer = best_jer
            # Remove the admitted pair from the pool (higher index first).
            pool.pop(b_idx)
            pool.pop(a)
            improved = True
    return selected, accumulated, current_jer
