"""Weighted majority voting — an extension beyond the paper's Section 2.1.

The paper aggregates with plain Majority Voting; when individual error rates
are known, the decision-theoretically optimal rule (Nitzan & Paroush 1982)
weights each vote by its log-odds of being correct,

    ``w_i = log((1 - eps_i) / eps_i)``

and decides by the sign of the weighted sum.  This module implements the
weighted scheme, the optimal weights, and the induced *weighted* jury error
rate — the probability that the wrongly-voting subset carries more than half
the total weight:

    ``WJER(J) = Pr( sum_{i in wrong} w_i > W / 2 )``

computed exactly by enumeration for small juries and by Monte-Carlo
otherwise.  The bench suite uses it to quantify how much plain Majority
Voting (the paper's scheme) leaves on the table.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro._validation import validate_error_rates
from repro.core.juror import Jury
from repro.core.voting import Voting
from repro.errors import InvalidJuryError

__all__ = [
    "optimal_log_odds_weights",
    "WeightedMajorityVoting",
    "weighted_jury_error_rate",
]

_ENUMERATION_LIMIT = 20


def optimal_log_odds_weights(error_rates: Iterable[float]) -> np.ndarray:
    """Nitzan-Paroush optimal voting weights ``log((1 - eps) / eps)``.

    Positive for better-than-chance jurors, zero at eps = 0.5, negative for
    adversarial jurors (whose votes are best inverted).

    >>> w = optimal_log_odds_weights([0.1, 0.5, 0.9])
    >>> bool(w[0] > 0 and abs(w[1]) < 1e-12 and w[2] < 0)
    True
    """
    eps = validate_error_rates(error_rates, name="error rates")
    return np.log((1.0 - eps) / eps)


class WeightedMajorityVoting:
    """Voting scheme deciding by a weighted vote sum.

    Parameters
    ----------
    weights:
        One weight per juror.  ``decide`` returns 1 when the total weight of
        1-votes strictly exceeds half the total positive mass, i.e.
        ``sum(w_i * v_i) > sum(w_i) / 2`` — which for uniform weights reduces
        to plain Majority Voting on odd juries.
    tie_break:
        Decision when the weighted sum lands exactly on the threshold.
    """

    name = "weighted-majority"

    def __init__(self, weights: Sequence[float], *, tie_break: int = 0) -> None:
        arr = np.asarray(list(weights), dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise InvalidJuryError("weights must be a non-empty 1-D sequence")
        if not np.all(np.isfinite(arr)):
            raise InvalidJuryError("weights must be finite")
        if tie_break not in (0, 1):
            raise InvalidJuryError(f"tie_break must be 0 or 1, got {tie_break!r}")
        self.weights = arr
        self.tie_break = int(tie_break)

    @classmethod
    def from_error_rates(cls, error_rates: Iterable[float]) -> "WeightedMajorityVoting":
        """Scheme with the optimal log-odds weights for these error rates."""
        return cls(optimal_log_odds_weights(error_rates))

    def decide(self, voting: Voting) -> int:
        """Weighted group decision for one voting."""
        if voting.size != self.weights.size:
            raise InvalidJuryError(
                f"vote count ({voting.size}) does not match weight count "
                f"({self.weights.size})"
            )
        mass = float(np.dot(self.weights, voting.as_array()))
        threshold = float(self.weights.sum()) / 2.0
        if math.isclose(mass, threshold, rel_tol=0.0, abs_tol=1e-12):
            return self.tie_break
        return 1 if mass > threshold else 0

    def decide_batch(self, votes: np.ndarray) -> np.ndarray:
        """Vectorised decisions for an ``(m, n)`` 0/1 vote matrix."""
        arr = np.asarray(votes)
        if arr.ndim != 2 or arr.shape[1] != self.weights.size:
            raise InvalidJuryError(
                f"batch shape {arr.shape} does not match weight count "
                f"{self.weights.size}"
            )
        mass = arr @ self.weights
        threshold = self.weights.sum() / 2.0
        decisions = (mass > threshold + 1e-12).astype(np.int8)
        ties = np.abs(mass - threshold) <= 1e-12
        decisions[ties] = self.tie_break
        return decisions

    def __call__(self, voting: Voting) -> int:
        return self.decide(voting)


def weighted_jury_error_rate(
    jury: "Jury | Iterable[float]",
    weights: Sequence[float] | None = None,
    *,
    trials: int = 200_000,
    rng: np.random.Generator | None = None,
) -> float:
    """Probability that weighted voting answers wrongly.

    With optimal log-odds ``weights`` (the default) this lower-bounds the
    plain-majority JER for any error-rate profile.  Exact enumeration over
    the ``2^n`` error patterns is used up to 20 jurors; larger juries fall
    back to Monte-Carlo with ``trials`` samples.

    Ties (zero weighted margin) are charged half an error, matching a fair
    coin-flip tie-break.

    >>> wjer = weighted_jury_error_rate([0.1, 0.4, 0.4])
    >>> from repro.core.jer import jer_dp
    >>> bool(wjer <= jer_dp([0.1, 0.4, 0.4]) + 1e-12)
    True
    """
    eps = (
        np.asarray(jury.error_rates, dtype=np.float64)
        if isinstance(jury, Jury)
        else validate_error_rates(jury, name="error rates")
    )
    w = (
        optimal_log_odds_weights(eps)
        if weights is None
        else np.asarray(list(weights), dtype=np.float64)
    )
    if w.size != eps.size:
        raise InvalidJuryError(
            f"weight count ({w.size}) does not match jury size ({eps.size})"
        )
    total = float(w.sum())
    if eps.size <= _ENUMERATION_LIMIT:
        error_probability = 0.0
        for pattern in itertools.product((0, 1), repeat=eps.size):
            prob = 1.0
            wrong_mass = 0.0
            for p, wrong, weight in zip(eps, pattern, w):
                prob *= p if wrong else (1.0 - p)
                if wrong:
                    wrong_mass += weight
            margin = wrong_mass - total / 2.0
            if margin > 1e-12:
                error_probability += prob
            elif abs(margin) <= 1e-12:
                error_probability += 0.5 * prob
        return float(min(max(error_probability, 0.0), 1.0))

    generator = rng if rng is not None else np.random.default_rng()
    wrong = generator.random((trials, eps.size)) < eps
    wrong_mass = wrong @ w
    margin = wrong_mass - total / 2.0
    errors = (margin > 1e-12).sum() + 0.5 * (np.abs(margin) <= 1e-12).sum()
    return float(errors / trials)
