"""Probability bounds on the Jury Error Rate — paper Lemma 2 and ablations.

The paper prunes JER computations with a **Paley-Zygmund lower bound**
(Lemma 2): when the expected number of wrong jurors ``mu = sum(eps_i)``
already exceeds the majority threshold ``(n+1)/2`` (i.e. the anti-
concentration ratio ``gamma = (n+1)/(2 mu)`` is below 1), the JER is at least

    (1 - gamma)^2 mu^2 / ((1 - gamma)^2 mu^2 + sigma^2)

with ``sigma^2 = sum(eps_i (1 - eps_i))``.  A selection algorithm can then
skip the exact JER whenever the bound is already worse than the incumbent.

For the ablation benchmarks this module also implements classic *upper*
bounds on the same tail (Markov, Cantelli, Hoeffding, Chernoff), which let
experiments quantify how tight Paley-Zygmund is in each regime.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro._validation import validate_error_rates
from repro.core.jer import majority_threshold

__all__ = [
    "gamma_ratio",
    "paley_zygmund_lower_bound",
    "markov_upper_bound",
    "cantelli_upper_bound",
    "hoeffding_upper_bound",
    "chernoff_upper_bound",
]


def _moments(error_rates: Iterable[float]) -> tuple[np.ndarray, float, float, int]:
    eps = validate_error_rates(error_rates, name="error rates")
    mu = float(eps.sum())
    sigma_sq = float(np.sum(eps * (1.0 - eps)))
    return eps, mu, sigma_sq, eps.size


def gamma_ratio(error_rates: Iterable[float]) -> float:
    """The Paley-Zygmund ratio ``gamma = ((n+1)/2) / mu`` (paper Lemma 2).

    The lower bound is applicable exactly when ``gamma`` lies in ``(0, 1)``,
    i.e. when the jury is *expected* to lose the majority.

    >>> gamma_ratio([0.9, 0.9, 0.9]) < 1
    True
    """
    _, mu, _, n = _moments(error_rates)
    threshold = majority_threshold(n)
    if mu == 0.0:
        return math.inf
    return threshold / mu


def paley_zygmund_lower_bound(error_rates: Iterable[float]) -> float | None:
    """Lower bound on JER from the Paley-Zygmund inequality (paper Lemma 2).

    Returns
    -------
    float or None
        The bound when applicable (``gamma`` in ``(0, 1)``), otherwise
        ``None`` — mirroring the ``gamma < 1`` guard in paper Algorithm 3.

    Examples
    --------
    >>> bound = paley_zygmund_lower_bound([0.9] * 5)
    >>> bound is not None and 0 < bound < 1
    True
    >>> paley_zygmund_lower_bound([0.1] * 5) is None
    True
    """
    eps, mu, sigma_sq, n = _moments(error_rates)
    threshold = majority_threshold(n)
    if mu <= 0.0:
        return None
    gamma = threshold / mu
    if not 0.0 < gamma < 1.0:
        return None
    shifted = (1.0 - gamma) * mu
    denominator = shifted * shifted + sigma_sq
    if denominator == 0.0:
        return None
    return (shifted * shifted) / denominator


def markov_upper_bound(error_rates: Iterable[float]) -> float:
    """Markov's inequality: ``Pr(C >= k) <= mu / k``.

    Trivial but assumption-free; clipped to 1.
    """
    _, mu, _, n = _moments(error_rates)
    threshold = majority_threshold(n)
    return min(mu / threshold, 1.0)


def cantelli_upper_bound(error_rates: Iterable[float]) -> float:
    """One-sided Chebyshev (Cantelli): ``Pr(C - mu >= t) <= s^2/(s^2 + t^2)``.

    Applicable when the threshold exceeds the mean; returns 1.0 otherwise
    (the inequality is vacuous there).
    """
    _, mu, sigma_sq, n = _moments(error_rates)
    threshold = majority_threshold(n)
    t = threshold - mu
    if t <= 0.0:
        return 1.0
    return sigma_sq / (sigma_sq + t * t)


def hoeffding_upper_bound(error_rates: Iterable[float]) -> float:
    """Hoeffding's inequality: ``Pr(C - mu >= t) <= exp(-2 t^2 / n)``.

    Applicable when the threshold exceeds the mean; returns 1.0 otherwise.
    """
    _, mu, _, n = _moments(error_rates)
    threshold = majority_threshold(n)
    t = threshold - mu
    if t <= 0.0:
        return 1.0
    return math.exp(-2.0 * t * t / n)


def chernoff_upper_bound(error_rates: Iterable[float]) -> float:
    """Multiplicative Chernoff bound for sums of independent Bernoullis.

    ``Pr(C >= (1 + d) mu) <= (e^d / (1 + d)^(1 + d))^mu`` for ``d > 0``;
    returns 1.0 when the threshold does not exceed the mean.
    """
    _, mu, _, n = _moments(error_rates)
    threshold = majority_threshold(n)
    if mu <= 0.0 or threshold <= mu:
        return 1.0
    delta = threshold / mu - 1.0
    exponent = mu * (delta - (1.0 + delta) * math.log1p(delta))
    return min(math.exp(exponent), 1.0)
