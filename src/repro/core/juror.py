"""Juror and Jury domain objects (paper Section 2, Definitions 1 and 4).

A :class:`Juror` is a candidate crowd worker with an individual error rate
``epsilon`` — the probability that the juror votes against the latent ground
truth of a binary decision task — and, under the Pay-as-you-go model (PayM),
a payment ``requirement``.

A :class:`Jury` is an odd-sized set of jurors that can hold a majority vote.
Juries are immutable; selection algorithms construct new juries rather than
mutating existing ones.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro._validation import (
    validate_error_rate,
    validate_odd_size,
    validate_requirement,
)
from repro.errors import InvalidJuryError

__all__ = ["Juror", "Jury"]

_juror_counter = itertools.count(1)


def _next_auto_id() -> str:
    return f"juror-{next(_juror_counter)}"


def ensure_unique_ids(members: Sequence["Juror"], *, where: str = "jury") -> None:
    """Raise :class:`InvalidJuryError` if two members share a juror id."""
    ids = [j.juror_id for j in members]
    if len(set(ids)) != len(ids):
        seen: set[str] = set()
        dup = next(i for i in ids if i in seen or seen.add(i))
        raise InvalidJuryError(f"duplicate juror id in {where}: {dup!r}")


__all__.append("ensure_unique_ids")


@dataclass(frozen=True, order=False)
class Juror:
    """A candidate crowd worker on a micro-blog service.

    Parameters
    ----------
    error_rate:
        Individual error rate ``epsilon_i`` in the open interval ``(0, 1)``
        (paper Definition 4): the probability of voting against the latent
        ground truth.
    requirement:
        Payment requirement ``r_i >= 0`` under PayM (paper Definition 8).
        Defaults to ``0.0``, which makes the juror altruistic (AltrM).
    juror_id:
        Stable identifier, e.g. a Twitter handle. Auto-generated when omitted.

    Examples
    --------
    >>> a = Juror(0.1, juror_id="A")
    >>> a.error_rate
    0.1
    >>> a.is_altruistic
    True
    """

    error_rate: float
    requirement: float = 0.0
    juror_id: str = field(default_factory=_next_auto_id)

    def __post_init__(self) -> None:
        object.__setattr__(self, "error_rate", validate_error_rate(self.error_rate))
        object.__setattr__(self, "requirement", validate_requirement(self.requirement))
        if not isinstance(self.juror_id, str) or not self.juror_id:
            raise InvalidJuryError(
                f"juror_id must be a non-empty string, got {self.juror_id!r}"
            )

    @property
    def accuracy(self) -> float:
        """Probability of voting correctly, ``1 - epsilon_i``."""
        return 1.0 - self.error_rate

    @property
    def is_altruistic(self) -> bool:
        """True when the juror demands no payment (AltrM behaviour)."""
        return self.requirement == 0.0

    @property
    def cost_quality_key(self) -> float:
        """The greedy ordering key ``epsilon_i * r_i`` used by PayALG.

        Paper Algorithm 4 sorts candidates by the product of error rate and
        requirement, preferring jurors that are simultaneously cheap and
        reliable.
        """
        return self.error_rate * self.requirement

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Juror(id={self.juror_id!r}, epsilon={self.error_rate:.4g}, "
            f"r={self.requirement:.4g})"
        )


class Jury:
    """An odd-sized set of jurors that can form a majority voting.

    Implements paper Definition 1.  The class is an immutable sequence of
    :class:`Juror` objects; the error-rate and requirement vectors are cached
    as NumPy arrays for the numerical routines in :mod:`repro.core.jer`.

    Parameters
    ----------
    jurors:
        The member jurors.  Duplicated juror ids are rejected.
    allow_even:
        By default the constructor enforces the paper's odd-size assumption
        (Section 2.1.1).  Intermediate algorithmic states occasionally need
        even-sized "partial juries"; pass ``allow_even=True`` for those.

    Examples
    --------
    >>> jury = Jury.from_error_rates([0.2, 0.3, 0.3])
    >>> jury.size
    3
    >>> round(jury.majority_threshold, 1)
    2
    """

    __slots__ = ("_jurors", "_error_rates", "_requirements")

    def __init__(self, jurors: Iterable[Juror], *, allow_even: bool = False) -> None:
        members = tuple(jurors)
        if not members:
            raise InvalidJuryError("a jury must contain at least one juror")
        if not all(isinstance(j, Juror) for j in members):
            raise InvalidJuryError("all jury members must be Juror instances")
        ensure_unique_ids(members, where="jury")
        if not allow_even:
            validate_odd_size(len(members))
        self._jurors: tuple[Juror, ...] = members
        self._error_rates = np.array([j.error_rate for j in members], dtype=np.float64)
        self._requirements = np.array([j.requirement for j in members], dtype=np.float64)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_error_rates(
        cls,
        error_rates: Iterable[float],
        requirements: Iterable[float] | None = None,
        *,
        id_prefix: str = "j",
        allow_even: bool = False,
    ) -> "Jury":
        """Build a jury from raw vectors of error rates (and requirements).

        >>> Jury.from_error_rates([0.1, 0.2, 0.3]).size
        3
        """
        eps = list(error_rates)
        reqs = list(requirements) if requirements is not None else [0.0] * len(eps)
        if len(reqs) != len(eps):
            raise InvalidJuryError(
                f"error_rates and requirements must have equal length "
                f"({len(eps)} != {len(reqs)})"
            )
        jurors = [
            Juror(e, r, juror_id=f"{id_prefix}{i + 1}")
            for i, (e, r) in enumerate(zip(eps, reqs))
        ]
        return cls(jurors, allow_even=allow_even)

    # ------------------------------------------------------------------
    # sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._jurors)

    def __iter__(self) -> Iterator[Juror]:
        return iter(self._jurors)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._jurors[index]
        return self._jurors[index]

    def __contains__(self, juror: object) -> bool:
        return juror in self._jurors

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Jury):
            return NotImplemented
        return frozenset(self._jurors) == frozenset(other._jurors)

    def __hash__(self) -> int:
        return hash(frozenset(self._jurors))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ids = ", ".join(j.juror_id for j in self._jurors[:6])
        suffix = ", ..." if len(self._jurors) > 6 else ""
        return f"Jury(size={self.size}, members=[{ids}{suffix}])"

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def jurors(self) -> tuple[Juror, ...]:
        """The member jurors, in construction order."""
        return self._jurors

    @property
    def size(self) -> int:
        """Number of jurors ``n``."""
        return len(self._jurors)

    @property
    def error_rates(self) -> np.ndarray:
        """Vector of individual error rates (read-only view)."""
        view = self._error_rates.view()
        view.flags.writeable = False
        return view

    @property
    def requirements(self) -> np.ndarray:
        """Vector of payment requirements (read-only view)."""
        view = self._requirements.view()
        view.flags.writeable = False
        return view

    @property
    def total_cost(self) -> float:
        """Total payment ``sum(r_i)`` demanded by the jury (PayM)."""
        return float(self._requirements.sum())

    @property
    def majority_threshold(self) -> int:
        """Smallest number of votes that forms a strict majority, ``(n+1)/2``."""
        return (self.size + 1) // 2

    @property
    def juror_ids(self) -> tuple[str, ...]:
        """Member identifiers in construction order."""
        return tuple(j.juror_id for j in self._jurors)

    # ------------------------------------------------------------------
    # derived juries
    # ------------------------------------------------------------------
    def sorted_by_error_rate(self) -> "Jury":
        """Return a new jury with members ordered by ascending error rate."""
        ordered = sorted(self._jurors, key=lambda j: (j.error_rate, j.juror_id))
        return Jury(ordered, allow_even=self.size % 2 == 0)

    def union(self, extra: Iterable[Juror], *, allow_even: bool = False) -> "Jury":
        """Return the jury enlarged with ``extra`` jurors."""
        return Jury(list(self._jurors) + list(extra), allow_even=allow_even)

    def without(self, juror: Juror, *, allow_even: bool = True) -> "Jury":
        """Return the jury with one member removed."""
        if juror not in self._jurors:
            raise InvalidJuryError(f"{juror!r} is not a member of this jury")
        remaining = [j for j in self._jurors if j != juror]
        return Jury(remaining, allow_even=allow_even)

    def is_allowed(self, budget: float | None = None) -> bool:
        """Whether the jury is *allowed* under the given model.

        Under AltrM (``budget is None``) every jury is allowed
        (Definition 7).  Under PayM the jury is allowed when its total cost
        does not exceed ``budget`` (Definition 8).
        """
        if budget is None:
            return True
        return self.total_cost <= float(budget) + 1e-12


def jurors_from_arrays(
    error_rates: Sequence[float],
    requirements: Sequence[float] | None = None,
    *,
    id_prefix: str = "j",
) -> list[Juror]:
    """Convenience constructor: build a candidate list from parallel arrays.

    This returns a plain ``list`` (a *candidate set*, not a jury), suitable as
    input to the selectors in :mod:`repro.core.selection`.

    >>> cands = jurors_from_arrays([0.1, 0.2], [0.5, 0.0])
    >>> [c.juror_id for c in cands]
    ['j1', 'j2']
    """
    reqs = requirements if requirements is not None else [0.0] * len(error_rates)
    if len(reqs) != len(error_rates):
        raise InvalidJuryError(
            "error_rates and requirements must have equal length "
            f"({len(error_rates)} != {len(reqs)})"
        )
    return [
        Juror(float(e), float(r), juror_id=f"{id_prefix}{i + 1}")
        for i, (e, r) in enumerate(zip(error_rates, reqs))
    ]


__all__.append("jurors_from_arrays")
