"""Adversarial accounts: spam rings / astroturf injection.

The paper motivates decision-making juries with rumor discernment and cites
"political astroturf and spam advertising" [Ratkiewicz et al.] as the threat
model.  A reproduction of the estimation pipeline should therefore be
exercised against the classic attack on authority ranking: a **spam ring**
of accounts that tweet heavily and retweet *each other*, trying to fabricate
the retweet in-links that Section 4.1 treats as endorsements.

:func:`inject_spam_ring` grafts such a ring onto an existing corpus; the
robustness tests verify that the Section 4 pipeline keeps ring members out
of the selected jury (their fabricated authority stays below the organic
authorities, and their normalised error rates stay high).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.estimation.tweets import Tweet, TweetCorpus

__all__ = ["SpamRingConfig", "inject_spam_ring"]


@dataclass(frozen=True)
class SpamRingConfig:
    """Shape of the injected spam ring.

    Attributes
    ----------
    n_spammers:
        Ring size.
    tweets_per_spammer:
        Original (spam) tweets each ring account posts.
    ring_retweet_probability:
        Probability that a given ring member retweets a given spam tweet —
        1.0 is a full clique of mutual amplification.
    username_prefix:
        Prefix for the generated ring usernames.
    """

    n_spammers: int = 10
    tweets_per_spammer: int = 5
    ring_retweet_probability: float = 0.8
    username_prefix: str = "spam"

    def __post_init__(self) -> None:
        if self.n_spammers < 2:
            raise SimulationError(
                f"a ring needs at least 2 members, got {self.n_spammers!r}"
            )
        if self.tweets_per_spammer < 1:
            raise SimulationError(
                f"tweets_per_spammer must be positive, got {self.tweets_per_spammer!r}"
            )
        if not 0.0 <= self.ring_retweet_probability <= 1.0:
            raise SimulationError(
                "ring_retweet_probability must lie in [0, 1], got "
                f"{self.ring_retweet_probability!r}"
            )


def inject_spam_ring(
    corpus: TweetCorpus,
    config: SpamRingConfig | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[TweetCorpus, list[str]]:
    """Return a new corpus with a mutual-amplification spam ring grafted on.

    The ring is disconnected from the organic users (no honest account
    retweets spam, spammers retweet no honest account) — the strongest form
    of the fabricated-endorsement attack, since every spam in-link survives
    graph construction.

    Parameters
    ----------
    corpus:
        The organic corpus (left untouched; a new corpus is returned).
    config:
        Ring shape; defaults to :class:`SpamRingConfig`'s defaults.
    rng:
        Random generator for the retweet draws.

    Returns
    -------
    (TweetCorpus, list[str])
        The augmented corpus and the ring usernames.

    >>> from repro.microblog.dataset import make_demo_corpus
    >>> bigger, ring = inject_spam_ring(make_demo_corpus())
    >>> len(ring)
    10
    """
    cfg = config if config is not None else SpamRingConfig()
    generator = rng if rng is not None else np.random.default_rng()
    spammers = [
        f"{cfg.username_prefix}{i:03d}" for i in range(cfg.n_spammers)
    ]
    taken = corpus.usernames
    clash = set(spammers) & taken
    if clash:
        raise SimulationError(
            f"spam usernames collide with the corpus: {sorted(clash)[:3]}"
        )

    augmented = TweetCorpus(list(corpus))
    serial = 0
    for author_index, author in enumerate(spammers):
        for t in range(cfg.tweets_per_spammer):
            serial += 1
            text = f"AMAZING DEAL #{serial} follow {author}"
            augmented.append(
                Tweet(author=author, text=text, tweet_id=f"spam-{serial}")
            )
            for amplifier_index, amplifier in enumerate(spammers):
                if amplifier_index == author_index:
                    continue
                if generator.random() < cfg.ring_retweet_probability:
                    serial += 1
                    augmented.append(
                        Tweet(
                            author=amplifier,
                            text=f"RT @{author} {text}",
                            tweet_id=f"spam-{serial}",
                        )
                    )
    return augmented, spammers
