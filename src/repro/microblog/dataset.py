"""Persistence and demo datasets for the micro-blog simulator.

Provides JSONL round-tripping of a full simulated service (profiles + corpus)
and a small deterministic demo dataset used by examples and tests.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

from repro.errors import SimulationError
from repro.estimation.tweets import Tweet, TweetCorpus
from repro.microblog.users import UserProfile

__all__ = [
    "save_population",
    "load_population",
    "make_demo_corpus",
    "DEMO_USERS",
]

#: Usernames of the hand-written demo dataset (mirrors the paper's Figure 1
#: cast: one authority, a few relays, several lurkers).
DEMO_USERS = ("alice", "bob", "carol", "dave", "erin", "frank", "grace")


def save_population(population: Sequence[UserProfile], path: str | Path) -> None:
    """Write user profiles as JSONL."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for user in population:
            handle.write(
                json.dumps(
                    {
                        "username": user.username,
                        "registration_day": user.registration_day,
                        "quality": user.quality,
                        "activity": user.activity,
                    }
                )
                + "\n"
            )


def load_population(path: str | Path) -> list[UserProfile]:
    """Load user profiles previously written by :func:`save_population`."""
    source = Path(path)
    population: list[UserProfile] = []
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                population.append(
                    UserProfile(
                        username=record["username"],
                        registration_day=record["registration_day"],
                        quality=record["quality"],
                        activity=record["activity"],
                    )
                )
            except (json.JSONDecodeError, KeyError) as exc:
                raise SimulationError(
                    f"malformed population line {line_number} in {source}: {exc}"
                ) from exc
    return population


def make_demo_corpus() -> TweetCorpus:
    """A tiny deterministic corpus with a clear authority structure.

    ``alice`` is the authority everyone retweets; ``bob`` and ``carol`` are
    relays (retweeted occasionally, retweet alice a lot); ``dave``/``erin``
    mostly retweet; ``frank``/``grace`` are lurkers who each produce one
    original tweet nobody amplifies.  Includes a two-hop chain so the
    Algorithm 5 chain logic is exercised.

    >>> corpus = make_demo_corpus()
    >>> len(corpus) > 10
    True
    """
    tweets = [
        Tweet("alice", "BREAKING: observational insight #1", "d1", 0.0),
        Tweet("bob", "RT @alice BREAKING: observational insight #1", "d2", 0.0),
        Tweet("carol", "RT @alice BREAKING: observational insight #1", "d3", 0.0),
        Tweet("dave", "RT @bob RT @alice BREAKING: observational insight #1", "d4", 0.0),
        Tweet("erin", "RT @carol RT @alice BREAKING: observational insight #1", "d5", 0.0),
        Tweet("alice", "insight #2, with data", "d6", 0.0),
        Tweet("bob", "RT @alice insight #2, with data", "d7", 0.0),
        Tweet("dave", "RT @alice insight #2, with data", "d8", 0.0),
        Tweet("erin", "RT @bob RT @alice insight #2, with data", "d9", 0.0),
        Tweet("bob", "my own hot take", "d10", 1.0),
        Tweet("dave", "RT @bob my own hot take", "d11", 1.0),
        Tweet("carol", "a careful thread", "d12", 1.0),
        Tweet("erin", "RT @carol a careful thread", "d13", 1.0),
        Tweet("frank", "hello world, nobody reads me", "d14", 1.0),
        Tweet("grace", "first tweet!", "d15", 1.0),
        Tweet("grace", "RT @alice BREAKING: observational insight #1", "d16", 1.0),
    ]
    return TweetCorpus(tweets)
