"""Directed follower network for the synthetic micro-blog service.

Real micro-blog follower graphs are scale-free: a handful of celebrities
collect most followers.  We grow the network with the **fitness
(Bianconi-Barabasi) model**: users join one at a time and follow ``m``
existing accounts, picking each with probability proportional to

    ``quality ** fitness_exponent * (in_degree + 1)``

The multiplicative fitness term keeps latent quality influential at every
scale (a purely additive bias would be swamped once degrees grow), so the
in-degree distribution is heavy-tailed *and* correlated with quality — which
is exactly what lets the retweet graph (built on top of this network by
:mod:`repro.microblog.activity`) recover quality through HITS/PageRank.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.microblog.users import UserProfile

__all__ = ["FollowerNetwork", "generate_follower_network"]


class FollowerNetwork:
    """Who-follows-whom over a fixed population.

    ``follow(a, b)`` records that ``a`` follows ``b``; tweets of ``b`` reach
    ``a`` and may be retweeted by ``a``.
    """

    def __init__(self, usernames: Sequence[str]) -> None:
        if len(set(usernames)) != len(usernames):
            raise SimulationError("usernames must be unique")
        self._following: dict[str, set[str]] = {u: set() for u in usernames}
        self._followers: dict[str, set[str]] = {u: set() for u in usernames}

    def follow(self, follower: str, followee: str) -> bool:
        """Record ``follower -> followee``; returns True when newly added."""
        if follower not in self._following or followee not in self._following:
            raise SimulationError("both users must belong to the population")
        if follower == followee:
            return False
        if followee in self._following[follower]:
            return False
        self._following[follower].add(followee)
        self._followers[followee].add(follower)
        return True

    def followers_of(self, user: str) -> set[str]:
        """Accounts that follow ``user`` (his tweet audience)."""
        self._require(user)
        return set(self._followers[user])

    def following_of(self, user: str) -> set[str]:
        """Accounts that ``user`` follows."""
        self._require(user)
        return set(self._following[user])

    def follower_count(self, user: str) -> int:
        """In-degree of ``user``."""
        self._require(user)
        return len(self._followers[user])

    @property
    def num_users(self) -> int:
        """Population size."""
        return len(self._following)

    @property
    def num_follow_edges(self) -> int:
        """Total number of follow relations."""
        return sum(len(s) for s in self._following.values())

    def _require(self, user: str) -> None:
        if user not in self._following:
            raise SimulationError(f"user {user!r} is not in the network")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FollowerNetwork(users={self.num_users}, "
            f"edges={self.num_follow_edges})"
        )


def generate_follower_network(
    population: Sequence[UserProfile],
    *,
    rng: np.random.Generator | None = None,
    follows_per_user: int = 8,
    fitness_exponent: float = 2.0,
) -> FollowerNetwork:
    """Grow a scale-free follower network over ``population``.

    Users are added in order; each new user follows up to
    ``follows_per_user`` distinct earlier users, chosen with probability
    proportional to ``quality ** fitness_exponent * (in_degree + 1)`` — the
    fitness preferential-attachment model.  High-quality accounts therefore
    become the celebrities rather than merely the early joiners.

    Parameters
    ----------
    population:
        The user profiles (order defines join order).
    follows_per_user:
        Target out-degree of each joining user.
    fitness_exponent:
        How strongly latent quality shapes attachment; 0 reduces to pure
        preferential attachment (age wins), larger values hand the network
        to the high-quality accounts.

    Returns
    -------
    FollowerNetwork
    """
    if follows_per_user < 1:
        raise SimulationError(
            f"follows_per_user must be positive, got {follows_per_user!r}"
        )
    if fitness_exponent < 0.0:
        raise SimulationError(
            f"fitness_exponent must be non-negative, got {fitness_exponent!r}"
        )
    generator = rng if rng is not None else np.random.default_rng()
    usernames = [u.username for u in population]
    network = FollowerNetwork(usernames)
    qualities = np.array([u.quality for u in population], dtype=np.float64)
    fitness = np.power(qualities, fitness_exponent)
    in_degree = np.zeros(len(population), dtype=np.float64)

    for joiner in range(1, len(population)):
        weights = fitness[:joiner] * (in_degree[:joiner] + 1.0)
        total = weights.sum()
        if total <= 0.0:
            probabilities = np.full(joiner, 1.0 / joiner)
        else:
            probabilities = weights / total
        k = min(follows_per_user, joiner)
        targets = generator.choice(joiner, size=k, replace=False, p=probabilities)
        for target in targets:
            if network.follow(usernames[joiner], usernames[int(target)]):
                in_degree[int(target)] += 1.0
    return network
