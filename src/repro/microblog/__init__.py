"""Synthetic micro-blog service (the paper's Twitter-dump substitute).

See DESIGN.md, "Substitutions": the paper estimates parameters from a
two-day public-timeline Twitter sample that cannot be redistributed.  This
package simulates the generative process behind such a sample — a user
population with latent quality, a scale-free follower network, and
quality-driven retweet cascades — and emits a raw
:class:`~repro.estimation.tweets.TweetCorpus` that the Section 4 estimation
pipeline consumes *unchanged*.
"""

from repro.microblog.activity import (
    CascadeConfig,
    generate_microblog_service,
    simulate_corpus,
)
from repro.microblog.adversarial import SpamRingConfig, inject_spam_ring
from repro.microblog.dataset import (
    DEMO_USERS,
    load_population,
    make_demo_corpus,
    save_population,
)
from repro.microblog.network import FollowerNetwork, generate_follower_network
from repro.microblog.users import UserProfile, account_age_map, generate_population

__all__ = [
    "UserProfile",
    "generate_population",
    "account_age_map",
    "FollowerNetwork",
    "generate_follower_network",
    "CascadeConfig",
    "simulate_corpus",
    "generate_microblog_service",
    "save_population",
    "load_population",
    "make_demo_corpus",
    "DEMO_USERS",
    "SpamRingConfig",
    "inject_spam_ring",
]
