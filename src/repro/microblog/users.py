"""Synthetic micro-blog user population.

The paper's real-data experiments (Section 5.2) start from a two-day public
Twitter timeline sample that is not redistributable.  This module generates
the *population* half of our substitute: users with

* a username,
* a registration day (drives the PayM requirement estimate of Section 4.2),
* a latent quality in (0, 1) (drives how often their content is retweeted —
  the ground truth that HITS/PageRank are supposed to recover), and
* an activity level (how often they tweet).

Latent quality is drawn from a Beta distribution whose long right tail
yields the few-celebrities/many-lurkers shape the paper observes ("most top
ranking users discovered by Pagerank overlaps with the ones identified by
HITS", power-law degree distributions, etc.).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = ["UserProfile", "generate_population"]


@dataclass(frozen=True)
class UserProfile:
    """One synthetic micro-blog account.

    Attributes
    ----------
    username:
        Unique handle, e.g. ``"user0042"``.
    registration_day:
        Days since the service launched when the account was created; the
        account *age* at observation time ``T`` is ``T - registration_day``.
    quality:
        Latent probability-like quality in (0, 1): how trustworthy and
        retweet-worthy the account's content is.
    activity:
        Expected number of original tweets the account posts per simulated
        day.
    """

    username: str
    registration_day: float
    quality: float
    activity: float

    def __post_init__(self) -> None:
        if not self.username:
            raise SimulationError("username must be non-empty")
        if not 0.0 < self.quality < 1.0:
            raise SimulationError(
                f"quality must lie in (0, 1), got {self.quality!r}"
            )
        if self.registration_day < 0.0:
            raise SimulationError(
                f"registration_day must be non-negative, got {self.registration_day!r}"
            )
        if self.activity < 0.0:
            raise SimulationError(
                f"activity must be non-negative, got {self.activity!r}"
            )

    def account_age(self, observation_day: float) -> float:
        """Account age in days at ``observation_day`` (clipped at 0)."""
        return max(0.0, observation_day - self.registration_day)


def generate_population(
    n_users: int,
    *,
    rng: np.random.Generator | None = None,
    quality_alpha: float = 1.3,
    quality_beta: float = 4.0,
    service_age_days: float = 2000.0,
    mean_activity: float = 1.5,
    username_prefix: str = "user",
) -> list[UserProfile]:
    """Generate a synthetic user population.

    Parameters
    ----------
    n_users:
        Population size.
    rng:
        NumPy random generator (a fresh default one when omitted).
    quality_alpha, quality_beta:
        Beta-distribution shape for latent quality.  The defaults give a
        right-skewed distribution: most users mediocre, a thin tail of
        authorities — the regime the paper's normalisation (Section 4.1.3)
        is designed for.
    service_age_days:
        Registration days are uniform over ``[0, service_age_days]``.
    mean_activity:
        Mean of the exponential distribution of per-day tweet counts.
    username_prefix:
        Prefix of generated usernames.

    Returns
    -------
    list[UserProfile]

    >>> population = generate_population(5, rng=np.random.default_rng(0))
    >>> len(population)
    5
    """
    if n_users < 1:
        raise SimulationError(f"n_users must be positive, got {n_users!r}")
    generator = rng if rng is not None else np.random.default_rng()
    qualities = np.clip(
        generator.beta(quality_alpha, quality_beta, size=n_users), 1e-6, 1 - 1e-6
    )
    registrations = generator.uniform(0.0, service_age_days, size=n_users)
    activities = generator.exponential(mean_activity, size=n_users)
    width = max(4, len(str(n_users)))
    return [
        UserProfile(
            username=f"{username_prefix}{i:0{width}d}",
            registration_day=float(registrations[i]),
            quality=float(qualities[i]),
            activity=float(activities[i]),
        )
        for i in range(n_users)
    ]


def account_age_map(
    population: Sequence[UserProfile], observation_day: float
) -> dict[str, float]:
    """Username -> account age at ``observation_day``, for the PayM estimator."""
    return {u.username: u.account_age(observation_day) for u in population}


__all__.append("account_age_map")
