"""Retweet-cascade simulation: the tweet-generating half of the simulator.

Each simulated day every user authors a Poisson number of original tweets
(rate = their activity).  A tweet then cascades: each follower of the
current holder retweets with probability

    ``retweet_base * holder_chain_quality``

and a retweet prepends ``RT @holder`` to the text, exactly the markup
Algorithm 5 parses.  Multi-hop cascades produce the multi-marker chains of
Section 4.1.1 case 2 ("RT @u2 RT @u3 ..."), so the downstream graph builder
sees the same artefacts the paper's real corpus contains — including chains
longer than two and users who never tweet.

The output is a plain :class:`~repro.estimation.tweets.TweetCorpus`; nothing
downstream can tell it apart from parsed real data.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.estimation.tweets import Tweet, TweetCorpus
from repro.microblog.network import FollowerNetwork, generate_follower_network
from repro.microblog.users import UserProfile, generate_population

__all__ = ["CascadeConfig", "simulate_corpus", "generate_microblog_service"]


@dataclass(frozen=True)
class CascadeConfig:
    """Knobs of the retweet-cascade process.

    Attributes
    ----------
    days:
        Number of simulated days (the paper's sample spans two days).
    retweet_base:
        Base retweet probability; multiplied by the author's quality, so a
        quality-0.9 author is retweeted ~9x more often than a quality-0.1
        one.
    max_cascade_depth:
        Hard cap on chain length (keeps tweets within the 140-character
        spirit; real chains rarely exceed a handful of hops).
    max_retweeters_per_hop:
        At each hop at most this many followers retweet (audience
        saturation).
    """

    days: int = 2
    retweet_base: float = 0.35
    max_cascade_depth: int = 4
    max_retweeters_per_hop: int = 6

    def __post_init__(self) -> None:
        if self.days < 1:
            raise SimulationError(f"days must be positive, got {self.days!r}")
        if not 0.0 <= self.retweet_base <= 1.0:
            raise SimulationError(
                f"retweet_base must lie in [0, 1], got {self.retweet_base!r}"
            )
        if self.max_cascade_depth < 1:
            raise SimulationError(
                f"max_cascade_depth must be positive, got {self.max_cascade_depth!r}"
            )
        if self.max_retweeters_per_hop < 1:
            raise SimulationError(
                "max_retweeters_per_hop must be positive, "
                f"got {self.max_retweeters_per_hop!r}"
            )


def simulate_corpus(
    population: Sequence[UserProfile],
    network: FollowerNetwork,
    *,
    config: CascadeConfig | None = None,
    rng: np.random.Generator | None = None,
) -> TweetCorpus:
    """Simulate tweet/retweet activity and return the raw corpus.

    Parameters
    ----------
    population:
        User profiles (quality drives retweet probability, activity drives
        tweet volume).
    network:
        Who-follows-whom; cascades spread along follow edges (a follower
        retweets the account it follows).
    config:
        Cascade parameters; defaults to :class:`CascadeConfig`'s defaults.
    rng:
        NumPy random generator.

    Returns
    -------
    TweetCorpus
        Tweets whose text embeds ``RT @user`` chains for every cascade hop.
    """
    cfg = config if config is not None else CascadeConfig()
    generator = rng if rng is not None else np.random.default_rng()
    profile_by_name = {u.username: u for u in population}
    if network.num_users != len(population):
        raise SimulationError(
            "network and population sizes differ: "
            f"{network.num_users} != {len(population)}"
        )

    corpus = TweetCorpus()
    tweet_serial = 0
    for day in range(cfg.days):
        for user in population:
            n_tweets = int(generator.poisson(user.activity))
            for _ in range(n_tweets):
                tweet_serial += 1
                original = Tweet(
                    author=user.username,
                    text=f"original thought #{tweet_serial}",
                    tweet_id=f"t{tweet_serial}",
                    created_at=float(day),
                )
                corpus.append(original)
                tweet_serial = _cascade(
                    original,
                    corpus,
                    network,
                    profile_by_name,
                    cfg,
                    generator,
                    tweet_serial,
                    day,
                )
    return corpus


def _cascade(
    root: Tweet,
    corpus: TweetCorpus,
    network: FollowerNetwork,
    profiles: dict[str, UserProfile],
    cfg: CascadeConfig,
    rng: np.random.Generator,
    tweet_serial: int,
    day: int,
) -> int:
    """Breadth-first retweet cascade below ``root``; returns the serial."""
    # Frontier entries: (holder username, chain text suffix, depth).
    frontier = [(root.author, f"RT @{root.author} {root.text}", 1)]
    seen = {root.author}
    while frontier:
        holder, chain_text, depth = frontier.pop(0)
        if depth > cfg.max_cascade_depth:
            continue
        holder_quality = profiles[holder].quality
        followers = sorted(network.followers_of(holder) - seen)
        if not followers:
            continue
        draws = rng.random(len(followers))
        retweeters = [
            f
            for f, draw in zip(followers, draws)
            if draw < cfg.retweet_base * holder_quality
        ][: cfg.max_retweeters_per_hop]
        for retweeter in retweeters:
            tweet_serial += 1
            retweet = Tweet(
                author=retweeter,
                text=chain_text,
                tweet_id=f"t{tweet_serial}",
                created_at=float(day),
            )
            corpus.append(retweet)
            seen.add(retweeter)
            frontier.append(
                (retweeter, f"RT @{retweeter} {chain_text}", depth + 1)
            )
    return tweet_serial


def generate_microblog_service(
    n_users: int,
    *,
    seed: int | None = None,
    days: int = 2,
    follows_per_user: int = 8,
    retweet_base: float = 0.35,
) -> tuple[list[UserProfile], FollowerNetwork, TweetCorpus]:
    """One-call convenience: population + network + two-day corpus.

    This is the library's stand-in for the paper's Twitter dump: a
    self-consistent micro-blog service whose corpus is consumed by the
    Section 4 estimation pipeline unchanged.

    Parameters
    ----------
    n_users:
        Population size (the paper's graph has 689,050 nodes; the
        experiments keep the top 5,000 — pick sizes your machine likes).
    seed:
        Seed for full determinism.
    days, follows_per_user, retweet_base:
        Forwarded to the underlying generators.

    Returns
    -------
    (population, network, corpus)
    """
    rng = np.random.default_rng(seed)
    population = generate_population(n_users, rng=rng)
    network = generate_follower_network(
        population, rng=rng, follows_per_user=follows_per_user
    )
    corpus = simulate_corpus(
        population,
        network,
        config=CascadeConfig(days=days, retweet_base=retweet_base),
        rng=rng,
    )
    return population, network, corpus
