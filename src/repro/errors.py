"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  Validation errors additionally derive
from :class:`ValueError` (or :class:`TypeError` where appropriate) so that the
library behaves like idiomatic Python for callers who do not know about the
custom hierarchy.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidErrorRateError",
    "InvalidRequirementError",
    "InvalidJuryError",
    "EvenJurySizeError",
    "EmptyCandidateSetError",
    "PoolNotFoundError",
    "BudgetError",
    "InfeasibleSelectionError",
    "EstimationError",
    "EmptyGraphError",
    "ConvergenceError",
    "SimulationError",
    "ProtocolError",
    "ServiceClosedError",
    "OverloadedError",
    "StorageError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class InvalidErrorRateError(ReproError, ValueError):
    """An individual error rate falls outside the open interval ``(0, 1)``.

    The paper (Definition 4) requires ``epsilon_i`` to be a probability in the
    *open* interval: a juror who is always right (0) or always wrong (1) would
    make the Poisson-Binomial model degenerate and the normalisation of
    Section 4.1.3 is clipped to avoid producing such values.
    """


class InvalidRequirementError(ReproError, ValueError):
    """A payment requirement is negative or non-finite (PayM, Definition 8)."""


class InvalidJuryError(ReproError, ValueError):
    """A jury violates a structural constraint (duplicates, empty, bad size)."""


class EvenJurySizeError(InvalidJuryError):
    """A majority-voting jury must have odd size (Section 2.1.1).

    Majority Voting is only well defined for odd jury sizes; the paper assumes
    odd sizes throughout so that a strict majority always exists.
    """


class EmptyCandidateSetError(ReproError, ValueError):
    """A selection algorithm was invoked with no candidate jurors."""


class PoolNotFoundError(ReproError, KeyError):
    """A query or command referenced a registry pool name that does not exist.

    Derives from :class:`KeyError` so registry lookups behave like idiomatic
    mapping access for callers unaware of the custom hierarchy.
    """

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message.
        return self.args[0] if self.args else ""


class BudgetError(ReproError, ValueError):
    """A budget is negative or non-finite (PayM, Definition 8)."""


class InfeasibleSelectionError(ReproError):
    """No allowed jury exists for the given model and budget.

    Raised by PayM selectors when even the single cheapest juror exceeds the
    budget, i.e. no odd-sized jury satisfies ``sum(r_i) <= B``.
    """


class EstimationError(ReproError):
    """Base class for errors in the parameter-estimation pipeline (Section 4)."""


class EmptyGraphError(EstimationError, ValueError):
    """A ranking algorithm received a graph with no nodes or no edges."""


class ConvergenceError(EstimationError, RuntimeError):
    """An iterative ranking algorithm failed to converge within its budget."""


class SimulationError(ReproError):
    """Base class for errors raised by the Monte-Carlo voting simulator."""


class ServiceClosedError(ReproError, RuntimeError):
    """An operation was attempted on a service that has been closed.

    Raised by :meth:`repro.api.AsyncJuryService.select` (and the surfaces on
    top of it) once :meth:`~repro.api.AsyncJuryService.aclose` has begun:
    requests already queued still drain, but no new work is accepted.
    """


class OverloadedError(ReproError):
    """The serving tier's bounded queues are full; the caller should retry.

    Carried on the wire as HTTP 503 with the stable code ``overloaded`` —
    backpressure made visible instead of unbounded memory growth.
    """


class StorageError(ReproError, RuntimeError):
    """The durable pool catalog hit unrecoverable on-disk state.

    Raised by :mod:`repro.storage` when recovery cannot produce a pool that
    is provably identical to the pre-crash state — a snapshot whose content
    hash disagrees with its manifest, or a WAL whose surviving records are
    internally inconsistent.  A *torn tail* (truncated final record,
    checksum mismatch at the end of the log) is **not** an error: recovery
    rolls back to the last valid record and surfaces a
    ``recovered_truncated`` counter instead.  This exception is reserved
    for states where silently serving a pool could mean serving the wrong
    pool.
    """


class ProtocolError(ReproError, ValueError):
    """A wire-protocol payload (JSONL row, serve command) is malformed.

    Raised by :meth:`repro.api.SelectionRequest.from_dict` and friends.  The
    optional ``detail`` mapping carries machine-readable position information
    (``where`` — the ``file:line`` location, ``field``, ``position``) that
    :class:`repro.api.ErrorInfo` preserves on the wire, so clients can point
    at the offending field rather than re-parse the message string.
    """

    def __init__(self, message: str, *, detail: dict | None = None) -> None:
        super().__init__(message)
        self.detail = detail
