"""From-scratch user-ranking algorithms — paper Algorithms 6 (HITS) and 7
(PageRank).

Both rankers operate on the retweet :class:`~repro.estimation.graph.UserGraph`
and return a *quality score* per user:

* :func:`hits` — the authority scores of Kleinberg's HITS, computed by the
  mutual-reinforcement iteration of Algorithm 6 (hub mass flows along edges
  to authorities and back).  The paper adopts authority scores as quality.
* :func:`pagerank` — the damped random-surfer scores of Algorithm 7.

The implementations are pure NumPy over an integer edge list; networkx is
*not* used (the test-suite cross-validates against it as an oracle only).

Convergence is declared when the L1 change between iterations drops under
``tol * num_nodes`` (a per-node tolerance, scaling to large graphs the same
way networkx does); exceeding ``max_iter`` raises
:class:`~repro.errors.ConvergenceError` unless ``strict=False``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, EmptyGraphError
from repro.estimation.graph import UserGraph

__all__ = ["hits", "pagerank", "HITSResult"]


class HITSResult:
    """Authority and hub scores from :func:`hits`.

    Attributes
    ----------
    authorities:
        Username -> authority score (the paper's quality score), L1-normalised.
    hubs:
        Username -> hub score, L1-normalised.
    iterations:
        Number of iterations until convergence.
    """

    __slots__ = ("authorities", "hubs", "iterations")

    def __init__(
        self,
        authorities: dict[str, float],
        hubs: dict[str, float],
        iterations: int,
    ) -> None:
        self.authorities = authorities
        self.hubs = hubs
        self.iterations = iterations

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HITSResult(users={len(self.authorities)}, iterations={self.iterations})"


def _prepare(graph: UserGraph) -> tuple[list[str], np.ndarray, np.ndarray]:
    if graph.num_nodes == 0:
        raise EmptyGraphError("cannot rank an empty graph")
    nodes, edge_list = graph.adjacency_arrays()
    if edge_list:
        edges = np.asarray(edge_list, dtype=np.int64)
        sources, targets = edges[:, 0], edges[:, 1]
    else:
        sources = np.empty(0, dtype=np.int64)
        targets = np.empty(0, dtype=np.int64)
    return nodes, sources, targets


def hits(
    graph: UserGraph,
    *,
    max_iter: int = 500,
    tol: float = 1e-10,
    strict: bool = True,
) -> HITSResult:
    """Quality scores via HITS (paper Algorithm 6).

    An edge ``u -> v`` (``u`` retweeted ``v``) makes ``u`` a *hub* endorsing
    the *authority* ``v``.  Each iteration accumulates

    * ``authority[v] += hub[u]`` over all edges, then normalises;
    * ``hub[u] += authority[v]`` over all edges, then normalises;

    exactly as the paper's pseudo-code.  Scores are L1-normalised.

    Raises
    ------
    EmptyGraphError
        If the graph has no nodes.
    ConvergenceError
        If ``strict`` and the iteration does not converge in ``max_iter``.
    """
    nodes, sources, targets = _prepare(graph)
    n = len(nodes)
    authority = np.full(n, 1.0 / n, dtype=np.float64)
    hub = np.full(n, 1.0 / n, dtype=np.float64)

    iterations = 0
    for iterations in range(1, max_iter + 1):
        new_authority = np.zeros(n, dtype=np.float64)
        if sources.size:
            np.add.at(new_authority, targets, hub[sources])
        new_authority = _normalise_l1(new_authority, n)

        new_hub = np.zeros(n, dtype=np.float64)
        if sources.size:
            np.add.at(new_hub, sources, new_authority[targets])
        new_hub = _normalise_l1(new_hub, n)

        delta = np.abs(new_authority - authority).sum() + np.abs(new_hub - hub).sum()
        authority, hub = new_authority, new_hub
        if delta < tol * n:
            break
    else:
        if strict:
            raise ConvergenceError(
                f"HITS did not converge within {max_iter} iterations (tol={tol:g})"
            )

    return HITSResult(
        authorities=dict(zip(nodes, authority.tolist())),
        hubs=dict(zip(nodes, hub.tolist())),
        iterations=iterations,
    )


def _normalise_l1(vector: np.ndarray, n: int) -> np.ndarray:
    total = vector.sum()
    if total <= 0.0:
        # No mass at all (e.g. edgeless graph): fall back to uniform scores.
        return np.full(n, 1.0 / n, dtype=np.float64)
    return vector / total


def pagerank(
    graph: UserGraph,
    *,
    damping: float = 0.85,
    max_iter: int = 500,
    tol: float = 1e-12,
    dangling: str = "redistribute",
    strict: bool = True,
) -> dict[str, float]:
    """Quality scores via PageRank (paper Algorithm 7).

    Each iteration applies

        ``score'[v] = (1 - d)/n + d * sum(score[u] / out[u])``

    over in-neighbours ``u`` of ``v``.  Authority flows *along* retweet
    edges: a retweet of ``v`` transfers rank mass from the retweeter to
    ``v``.

    Parameters
    ----------
    graph:
        The retweet user graph.
    damping:
        The damping factor ``d`` of Algorithm 7 (default 0.85).
    dangling:
        ``"redistribute"`` (default) spreads the rank mass of users with no
        outgoing edges uniformly, keeping scores a probability distribution
        (the standard treatment, and what networkx does).  ``"drop"``
        follows the paper's pseudo-code literally, letting dangling mass
        leak; scores then sum to less than one.
    tol, max_iter, strict:
        Convergence controls; see module docstring.

    Returns
    -------
    dict[str, float]
        Username -> PageRank score.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must lie in (0, 1), got {damping!r}")
    if dangling not in ("redistribute", "drop"):
        raise ValueError(
            f"dangling must be 'redistribute' or 'drop', got {dangling!r}"
        )
    nodes, sources, targets = _prepare(graph)
    n = len(nodes)
    out_degree = np.zeros(n, dtype=np.float64)
    if sources.size:
        np.add.at(out_degree, sources, 1.0)
    dangling_mask = out_degree == 0.0
    safe_out = np.where(dangling_mask, 1.0, out_degree)

    score = np.full(n, 1.0 / n, dtype=np.float64)
    for _iteration in range(1, max_iter + 1):
        contribution = score / safe_out
        new_score = np.full(n, (1.0 - damping) / n, dtype=np.float64)
        if sources.size:
            np.add.at(new_score, targets, damping * contribution[sources])
        if dangling == "redistribute":
            dangling_mass = score[dangling_mask].sum()
            new_score += damping * dangling_mass / n
        delta = np.abs(new_score - score).sum()
        score = new_score
        if delta < tol * n:
            break
    else:
        if strict:
            raise ConvergenceError(
                f"PageRank did not converge within {max_iter} iterations (tol={tol:g})"
            )
    return dict(zip(nodes, score.tolist()))
