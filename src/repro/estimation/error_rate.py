"""Score-to-error-rate normalisation — paper Section 4.1.3.

Quality scores from HITS/PageRank follow the power-law shape typical of
social networks, so the paper maps them to individual error rates with an
exponential normalisation that spreads the long tail:

    ``epsilon_i = beta ** (-alpha * (score_i - min) / (max - min))``

with ``alpha = beta = 10`` in the experiments.  The best-scoring user gets
``beta**-alpha`` (~1e-10, essentially never wrong) and the worst gets
``beta**0 = 1`` (always wrong); because Definition 4 requires error rates in
the *open* interval (0, 1), results are clipped to
``[clip, 1 - clip]``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import EstimationError

__all__ = ["normalise_scores_to_error_rates", "scores_to_error_rates"]

#: Default clip keeping error rates inside the open interval (0, 1).
DEFAULT_CLIP = 1e-9


def normalise_scores_to_error_rates(
    scores: Iterable[float],
    *,
    alpha: float = 10.0,
    beta: float = 10.0,
    clip: float = DEFAULT_CLIP,
) -> np.ndarray:
    """Vectorised Section 4.1.3 normalisation.

    Parameters
    ----------
    scores:
        Raw quality scores (HITS authorities or PageRank values).
    alpha, beta:
        Normalisation factors; the paper's experiments use 10 and 10.
    clip:
        Error rates are clipped to ``[clip, 1 - clip]`` so they satisfy the
        open-interval requirement of Definition 4.

    Returns
    -------
    numpy.ndarray
        Error rates, same order as ``scores``.

    Notes
    -----
    When every score is identical the normalisation is 0/0; the function
    returns the midpoint value ``beta ** (-alpha / 2)`` for all users, which
    is the natural "no information" resolution.

    >>> eps = normalise_scores_to_error_rates([0.0, 0.5, 1.0])
    >>> float(eps[2]) <= 1e-9 or eps[2] < eps[0]
    True
    """
    if alpha <= 0.0:
        raise EstimationError(f"alpha must be positive, got {alpha!r}")
    if beta <= 1.0:
        raise EstimationError(f"beta must exceed 1, got {beta!r}")
    if not 0.0 < clip < 0.5:
        raise EstimationError(f"clip must lie in (0, 0.5), got {clip!r}")
    arr = np.asarray(list(scores) if not isinstance(scores, np.ndarray) else scores,
                     dtype=np.float64)
    if arr.size == 0:
        return arr
    if not np.all(np.isfinite(arr)):
        raise EstimationError("scores must be finite")
    low, high = float(arr.min()), float(arr.max())
    if high == low:
        rates = np.full(arr.shape, float(beta) ** (-alpha / 2.0))
    else:
        exponent = -alpha * (arr - low) / (high - low)
        rates = np.power(float(beta), exponent)
    return np.clip(rates, clip, 1.0 - clip)


def scores_to_error_rates(
    scores: Mapping[str, float],
    *,
    alpha: float = 10.0,
    beta: float = 10.0,
    clip: float = DEFAULT_CLIP,
) -> dict[str, float]:
    """Map a username->score dict to a username->error-rate dict.

    Convenience wrapper over :func:`normalise_scores_to_error_rates` for the
    dict-shaped output of the rankers.

    >>> rates = scores_to_error_rates({"a": 0.0, "b": 1.0})
    >>> rates["b"] < rates["a"]
    True
    """
    users = list(scores)
    rates = normalise_scores_to_error_rates(
        [scores[u] for u in users], alpha=alpha, beta=beta, clip=clip
    )
    return dict(zip(users, rates.tolist()))
