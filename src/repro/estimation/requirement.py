"""Payment-requirement estimation — paper Section 4.2.

Under PayM each candidate juror demands a payment ``r_i``.  The paper
proposes a deliberately simple indicator — the *age of the account since
registration* — on the assumption that more experienced users are less
intrinsically interested in a task and therefore require more incentive:

    ``r_i = (t_i - min) / (max - min)``

Any other estimator "can be smoothly plugged in"; this module keeps the same
min-max shape but exposes it generically.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.errors import EstimationError

__all__ = ["normalise_ages_to_requirements", "ages_to_requirements"]


def normalise_ages_to_requirements(ages: Iterable[float]) -> np.ndarray:
    """Min-max normalise account ages into requirements in ``[0, 1]``.

    Parameters
    ----------
    ages:
        Account ages (any non-negative unit: days, years...).

    Returns
    -------
    numpy.ndarray
        Requirements, same order as ``ages``; the youngest account maps to
        0 (works for free), the oldest to 1.

    Notes
    -----
    If all ages are identical there is no information to spread; every user
    receives the midpoint requirement 0.5.

    >>> normalise_ages_to_requirements([0.0, 5.0, 10.0]).tolist()
    [0.0, 0.5, 1.0]
    """
    arr = np.asarray(list(ages) if not isinstance(ages, np.ndarray) else ages,
                     dtype=np.float64)
    if arr.size == 0:
        return arr
    if not np.all(np.isfinite(arr)):
        raise EstimationError("account ages must be finite")
    if np.any(arr < 0.0):
        raise EstimationError("account ages must be non-negative")
    low, high = float(arr.min()), float(arr.max())
    if high == low:
        return np.full(arr.shape, 0.5)
    return (arr - low) / (high - low)


def ages_to_requirements(ages: Mapping[str, float]) -> dict[str, float]:
    """Map a username->age dict to a username->requirement dict.

    >>> reqs = ages_to_requirements({"old": 10.0, "new": 0.0})
    >>> reqs["new"], reqs["old"]
    (0.0, 1.0)
    """
    users = list(ages)
    values = normalise_ages_to_requirements([ages[u] for u in users])
    return dict(zip(users, values.tolist()))
