"""Error-rate estimation from voting history — EM without ground truth.

Paper Section 4 estimates error rates from the retweet graph, and notes that
"any other reasonable measures can be smoothly plugged in".  The most
requested such measure in practice is *past voting behaviour*: once a juror
pool has answered a batch of tasks, their error rates can be re-estimated
from agreement patterns alone, with no ground-truth labels — the one-coin
Dawid-Skene model the paper's related work (Ipeirotis et al., Raykar et al.)
builds on.

Model: task ``t`` has a latent truth ``z_t ~ Bernoulli(pi)``; juror ``i``
votes against ``z_t`` with probability ``eps_i`` independently.  EM
alternates:

* **E-step** — posterior ``gamma_t = Pr(z_t = 1 | votes)`` from the current
  ``eps`` and prior;
* **M-step** — ``eps_i`` = expected fraction of juror *i*'s votes that
  disagree with the (soft) truth; ``pi`` = mean posterior.

The model is symmetric under flipping all labels; we break the tie toward
the convention that the average juror is better than chance (mean eps < .5),
which is exactly the regime where majority voting is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.juror import Juror
from repro.errors import EstimationError

__all__ = ["EMEstimate", "estimate_error_rates_em", "jurors_from_history"]

_EPS_FLOOR = 1e-4


@dataclass(frozen=True)
class EMEstimate:
    """Result of :func:`estimate_error_rates_em`.

    Attributes
    ----------
    error_rates:
        Estimated ``eps_i`` per juror (column of the vote matrix).
    truth_posteriors:
        ``Pr(z_t = 1)`` per task under the fitted model.
    prior:
        Fitted prevalence ``pi`` of answer 1.
    iterations:
        EM iterations performed.
    log_likelihood:
        Final observed-data log likelihood.
    """

    error_rates: np.ndarray
    truth_posteriors: np.ndarray
    prior: float
    iterations: int
    log_likelihood: float


def estimate_error_rates_em(
    votes: np.ndarray,
    mask: np.ndarray | None = None,
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> EMEstimate:
    """Fit the one-coin Dawid-Skene model to a 0/1 vote matrix.

    Parameters
    ----------
    votes:
        Array of shape ``(n_tasks, n_jurors)`` with entries in {0, 1}.
        Entries where ``mask`` is False are ignored (juror did not answer).
    mask:
        Optional boolean array of the same shape; True = vote observed.
    max_iter, tol:
        EM stops when the log-likelihood improves by less than ``tol`` or
        after ``max_iter`` iterations.

    Returns
    -------
    EMEstimate

    Raises
    ------
    EstimationError
        On malformed input (wrong shape, non-binary votes, empty columns).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> true_eps = np.array([0.1, 0.2, 0.35])
    >>> truth = rng.integers(0, 2, size=400)
    >>> wrong = rng.random((400, 3)) < true_eps
    >>> votes = np.where(wrong, 1 - truth[:, None], truth[:, None])
    >>> fit = estimate_error_rates_em(votes)
    >>> bool(np.all(np.abs(fit.error_rates - true_eps) < 0.06))
    True
    """
    arr = np.asarray(votes)
    if arr.ndim != 2 or arr.size == 0:
        raise EstimationError(
            f"votes must be a non-empty (tasks, jurors) matrix, got shape "
            f"{arr.shape}"
        )
    if not np.isin(arr, (0, 1)).all():
        raise EstimationError("votes must contain only 0/1 entries")
    observed = (
        np.ones(arr.shape, dtype=bool)
        if mask is None
        else np.asarray(mask, dtype=bool)
    )
    if observed.shape != arr.shape:
        raise EstimationError(
            f"mask shape {observed.shape} does not match votes shape {arr.shape}"
        )
    per_juror_counts = observed.sum(axis=0)
    if np.any(per_juror_counts == 0):
        raise EstimationError("every juror needs at least one observed vote")

    n_tasks, n_jurors = arr.shape
    votes_f = arr.astype(np.float64)

    # Initialise from (soft) majority voting.
    with np.errstate(invalid="ignore"):
        gamma = np.where(
            observed.sum(axis=1) > 0,
            (votes_f * observed).sum(axis=1) / np.maximum(observed.sum(axis=1), 1),
            0.5,
        )
    gamma = np.clip(gamma, 0.05, 0.95)
    prior = float(gamma.mean())
    eps = np.full(n_jurors, 0.25)

    last_ll = -np.inf
    iterations = 0
    for iterations in range(1, max_iter + 1):
        # E-step: log Pr(votes_t | z) for z = 1 and z = 0.
        log_correct = np.log(np.clip(1.0 - eps, _EPS_FLOOR, 1.0))
        log_wrong = np.log(np.clip(eps, _EPS_FLOOR, 1.0))
        # If z=1: vote 1 is correct, vote 0 wrong; if z=0: reverse.
        ll_given_1 = observed * (votes_f * log_correct + (1 - votes_f) * log_wrong)
        ll_given_0 = observed * (votes_f * log_wrong + (1 - votes_f) * log_correct)
        log_p1 = np.log(max(prior, 1e-12)) + ll_given_1.sum(axis=1)
        log_p0 = np.log(max(1.0 - prior, 1e-12)) + ll_given_0.sum(axis=1)
        top = np.maximum(log_p1, log_p0)
        log_norm = top + np.log(np.exp(log_p1 - top) + np.exp(log_p0 - top))
        gamma = np.exp(log_p1 - log_norm)
        log_likelihood = float(log_norm.sum())

        # M-step.
        prior = float(gamma.mean())
        disagree_1 = (1 - votes_f) * observed  # wrong if z=1
        disagree_0 = votes_f * observed        # wrong if z=0
        expected_wrong = gamma @ disagree_1 + (1 - gamma) @ disagree_0
        eps = expected_wrong / per_juror_counts
        eps = np.clip(eps, _EPS_FLOOR, 1.0 - _EPS_FLOOR)

        if log_likelihood - last_ll < tol and iterations > 1:
            last_ll = log_likelihood
            break
        last_ll = log_likelihood

    # Resolve the label-flip symmetry: prefer the solution where the average
    # juror beats a coin flip.
    if float(eps.mean()) > 0.5:
        eps = 1.0 - eps
        gamma = 1.0 - gamma
        prior = 1.0 - prior

    return EMEstimate(
        error_rates=eps,
        truth_posteriors=gamma,
        prior=prior,
        iterations=iterations,
        log_likelihood=last_ll,
    )


def jurors_from_history(
    votes: np.ndarray,
    juror_ids: list[str] | None = None,
    requirements: np.ndarray | None = None,
    **em_kwargs,
) -> list[Juror]:
    """Build a candidate set directly from a voting-history matrix.

    Convenience wrapper: fit the EM model and wrap the estimated error rates
    into :class:`~repro.core.juror.Juror` objects ready for the selectors.

    >>> import numpy as np
    >>> rng = np.random.default_rng(1)
    >>> truth = rng.integers(0, 2, size=300)
    >>> wrong = rng.random((300, 2)) < np.array([0.1, 0.3])
    >>> votes = np.where(wrong, 1 - truth[:, None], truth[:, None])
    >>> cands = jurors_from_history(votes)
    >>> cands[0].error_rate < cands[1].error_rate
    True
    """
    fit = estimate_error_rates_em(votes, **em_kwargs)
    n = fit.error_rates.size
    ids = juror_ids if juror_ids is not None else [f"hist-{i + 1}" for i in range(n)]
    if len(ids) != n:
        raise EstimationError(
            f"juror_ids length ({len(ids)}) does not match vote columns ({n})"
        )
    reqs = (
        np.zeros(n)
        if requirements is None
        else np.asarray(requirements, dtype=np.float64)
    )
    if reqs.size != n:
        raise EstimationError(
            f"requirements length ({reqs.size}) does not match vote columns ({n})"
        )
    return [
        Juror(float(fit.error_rates[i]), float(reqs[i]), juror_id=ids[i])
        for i in range(n)
    ]
