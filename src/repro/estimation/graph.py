"""Retweet user-graph construction — paper Algorithm 5.

The estimation pipeline links ``user1 -> user2`` whenever ``user1`` has ever
retweeted ``user2``'s content; each ordered pair is linked *once and only
once* (Section 4.1.1), producing a simple directed graph whose structure
feeds the HITS and PageRank rankers.

The graph implementation is self-contained (plain adjacency sets) — the
library does not depend on networkx; the test-suite uses networkx purely as
an oracle to cross-validate the ranking algorithms.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import EmptyGraphError, EstimationError
from repro.estimation.tweets import RETWEET_PATTERN, TweetCorpus

__all__ = ["UserGraph", "build_user_graph"]


class UserGraph:
    """A simple directed graph over micro-blog users.

    Nodes are usernames; an edge ``u -> v`` records that ``u`` retweeted
    ``v`` at least once.  Parallel edges are collapsed (Algorithm 5 links
    each ordered pair exactly once); self-loops are rejected because a user
    quoting themself carries no authority signal.
    """

    def __init__(self) -> None:
        self._successors: dict[str, set[str]] = {}
        self._predecessors: dict[str, set[str]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, user: str) -> None:
        """Insert an isolated user (idempotent)."""
        if not isinstance(user, str) or not user:
            raise EstimationError(f"node must be a non-empty string, got {user!r}")
        if user not in self._successors:
            self._successors[user] = set()
            self._predecessors[user] = set()

    def add_edge(self, retweeter: str, original: str) -> bool:
        """Link ``retweeter -> original``; returns True if the edge is new.

        Self-loops are silently ignored (returns False), matching the
        intuition that self-retweets say nothing about authority.
        """
        if retweeter == original:
            return False
        self.add_node(retweeter)
        self.add_node(original)
        if original in self._successors[retweeter]:
            return False
        self._successors[retweeter].add(original)
        self._predecessors[original].add(retweeter)
        self._edge_count += 1
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of users in the graph."""
        return len(self._successors)

    @property
    def num_edges(self) -> int:
        """Number of distinct retweet-relationship pairs."""
        return self._edge_count

    def __contains__(self, user: str) -> bool:
        return user in self._successors

    def __len__(self) -> int:
        return self.num_nodes

    def nodes(self) -> Iterator[str]:
        """Iterate users in insertion order."""
        return iter(self._successors)

    def edges(self) -> Iterator[tuple[str, str]]:
        """Iterate ``(retweeter, original)`` edges."""
        for source, targets in self._successors.items():
            for target in targets:
                yield (source, target)

    def successors(self, user: str) -> set[str]:
        """Users whom ``user`` has retweeted (out-neighbours)."""
        self._require(user)
        return set(self._successors[user])

    def predecessors(self, user: str) -> set[str]:
        """Users who have retweeted ``user`` (in-neighbours)."""
        self._require(user)
        return set(self._predecessors[user])

    def out_degree(self, user: str) -> int:
        """Number of distinct users that ``user`` retweeted."""
        self._require(user)
        return len(self._successors[user])

    def in_degree(self, user: str) -> int:
        """Number of distinct users who retweeted ``user``.

        The paper's proxy for influence: "the more a user's tweets are
        retweeted by other users, the more authoritative ... the user is".
        """
        self._require(user)
        return len(self._predecessors[user])

    def has_edge(self, retweeter: str, original: str) -> bool:
        """Whether ``retweeter -> original`` is in the graph."""
        return retweeter in self._successors and original in self._successors[retweeter]

    def _require(self, user: str) -> None:
        if user not in self._successors:
            raise EstimationError(f"user {user!r} is not in the graph")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def subgraph(self, users: Iterable[str]) -> "UserGraph":
        """Induced subgraph on ``users`` (unknown names are ignored)."""
        keep = {u for u in users if u in self._successors}
        sub = UserGraph()
        for user in keep:
            sub.add_node(user)
        for user in keep:
            for target in self._successors[user]:
                if target in keep:
                    sub.add_edge(user, target)
        return sub

    def adjacency_arrays(self) -> tuple[list[str], list[tuple[int, int]]]:
        """Node list plus integer edge list, for the numeric rankers."""
        nodes = list(self._successors)
        index = {user: i for i, user in enumerate(nodes)}
        edge_list = [
            (index[source], index[target]) for source, target in self.edges()
        ]
        return nodes, edge_list

    def degree_histogram(self) -> dict[int, int]:
        """Histogram of in-degrees — used to verify the power-law shape of
        simulated data (Section 4.1.3 leans on it for normalisation)."""
        histogram: dict[int, int] = {}
        for user in self._successors:
            degree = len(self._predecessors[user])
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UserGraph(nodes={self.num_nodes}, edges={self.num_edges})"


def build_user_graph(corpus: TweetCorpus) -> UserGraph:
    """Algorithm 5: build the directed retweet graph from a tweet corpus.

    Every tweet author becomes a node; every retweet-relationship pair
    ``(retweeter, original)`` extracted from ``RT @`` chains becomes a
    directed edge, inserted at most once.

    >>> from repro.estimation.tweets import Tweet, TweetCorpus
    >>> corpus = TweetCorpus([Tweet("a", "RT @b hello"), Tweet("c", "hi")])
    >>> graph = build_user_graph(corpus)
    >>> graph.num_nodes, graph.num_edges
    (3, 1)
    """
    if len(corpus) == 0:
        raise EmptyGraphError("cannot build a user graph from an empty corpus")
    graph = UserGraph()
    for tweet in corpus:
        graph.add_node(tweet.author)
        last_user = tweet.author
        for retweeted in RETWEET_PATTERN.findall(tweet.text):
            graph.add_edge(last_user, retweeted)
            last_user = retweeted
    return graph
