"""Parameter estimation from micro-blog data (paper Section 4).

Pipeline stages:

1. :mod:`~repro.estimation.tweets` — tweet records and ``RT @`` chain parsing;
2. :mod:`~repro.estimation.graph` — retweet user-graph construction (Alg 5);
3. :mod:`~repro.estimation.ranking` — from-scratch HITS (Alg 6) and PageRank
   (Alg 7);
4. :mod:`~repro.estimation.error_rate` — score normalisation (Sec 4.1.3);
5. :mod:`~repro.estimation.requirement` — account-age payments (Sec 4.2);
6. :mod:`~repro.estimation.pipeline` — everything chained end to end.
"""

from repro.estimation.error_rate import (
    normalise_scores_to_error_rates,
    scores_to_error_rates,
)
from repro.estimation.graph import UserGraph, build_user_graph
from repro.estimation.history import (
    EMEstimate,
    estimate_error_rates_em,
    jurors_from_history,
)
from repro.estimation.pipeline import (
    EstimationResult,
    PoolSyncReport,
    estimate_candidates,
    sync_pool_with_estimate,
)
from repro.estimation.ranking import HITSResult, hits, pagerank
from repro.estimation.requirement import (
    ages_to_requirements,
    normalise_ages_to_requirements,
)
from repro.estimation.tweets import (
    RETWEET_PATTERN,
    Tweet,
    TweetCorpus,
    extract_retweet_chain,
    extract_retweet_pairs,
)

__all__ = [
    "Tweet",
    "TweetCorpus",
    "RETWEET_PATTERN",
    "extract_retweet_chain",
    "extract_retweet_pairs",
    "UserGraph",
    "build_user_graph",
    "hits",
    "pagerank",
    "HITSResult",
    "normalise_scores_to_error_rates",
    "scores_to_error_rates",
    "normalise_ages_to_requirements",
    "ages_to_requirements",
    "EstimationResult",
    "estimate_candidates",
    "PoolSyncReport",
    "sync_pool_with_estimate",
    "EMEstimate",
    "estimate_error_rates_em",
    "jurors_from_history",
]
