"""Tweet records and retweet-chain extraction (paper Section 4.1.1).

The paper mines individual error rates from raw micro-blog data by parsing
the ``RT @username`` markup convention.  A tweet released by ``user1`` that
contains

    ``"so true! RT @user2 breaking: RT @user3 quake near Tokyo"``

encodes a *retweet-relationship chain*: ``user3`` is the original author,
``user2`` retweeted ``user3``, and ``user1`` (the tweet's author) retweeted
``user2``.  Algorithm 5 extracts the ordered pairs

    ``(user1, user2), (user2, user3)``

from such chains; this module implements exactly that extraction, and a
:class:`TweetCorpus` container the graph builder consumes.
"""

from __future__ import annotations

import json
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.errors import EstimationError

__all__ = [
    "Tweet",
    "TweetCorpus",
    "RETWEET_PATTERN",
    "extract_retweet_chain",
    "extract_retweet_pairs",
]

#: The paper's Algorithm 5 matches the substring ``'RT @[\w]+'`` — a retweet
#: marker followed by a legal username.  ``\w`` covers letters, digits and
#: underscore, matching Twitter's username alphabet.
RETWEET_PATTERN = re.compile(r"RT @(\w+)")


@dataclass(frozen=True)
class Tweet:
    """A single micro-blog message.

    Parameters
    ----------
    author:
        Username of the account that released the tweet.
    text:
        Message content, possibly containing ``RT @user`` markers.
    tweet_id:
        Optional stable identifier.
    created_at:
        Optional timestamp (days since epoch of the dataset); used only for
        bookkeeping, never parsed.
    """

    author: str
    text: str
    tweet_id: str = ""
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.author, str) or not self.author:
            raise EstimationError(f"tweet author must be a non-empty string, got {self.author!r}")
        if not isinstance(self.text, str):
            raise EstimationError(f"tweet text must be a string, got {type(self.text).__name__}")

    @property
    def mentions_retweet(self) -> bool:
        """Whether the tweet contains at least one ``RT @user`` marker."""
        return RETWEET_PATTERN.search(self.text) is not None


def extract_retweet_chain(tweet: Tweet) -> list[str]:
    """The retweet chain of a tweet: author followed by every ``RT @`` user.

    For the two cases of Section 4.1.1:

    * one marker — ``[author, user2]``;
    * multiple markers — ``[author, user2, ..., userN]`` in order of
      appearance, userN being the original author.

    Self-retweets (a user retweeting themselves, which happens with manual
    quoting) are preserved here and filtered by the graph builder.

    >>> extract_retweet_chain(Tweet("u1", "wow RT @u2 RT @u3 source"))
    ['u1', 'u2', 'u3']
    """
    return [tweet.author] + RETWEET_PATTERN.findall(tweet.text)


def extract_retweet_pairs(tweet: Tweet) -> list[tuple[str, str]]:
    """Ordered retweet-relationship pairs of one tweet (Algorithm 5's core).

    Each pair ``(retweeter, original)`` means *retweeter rebroadcast
    original's content*; consecutive chain members form the pairs.

    >>> extract_retweet_pairs(Tweet("u1", "wow RT @u2 RT @u3 source"))
    [('u1', 'u2'), ('u2', 'u3')]
    >>> extract_retweet_pairs(Tweet("u1", "no retweet here"))
    []
    """
    chain = extract_retweet_chain(tweet)
    return [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]


class TweetCorpus:
    """An ordered collection of tweets with JSONL persistence.

    The corpus is the input artefact of the estimation pipeline — for the
    paper this was a two-day public-timeline Twitter sample; for this
    reproduction it is produced by :mod:`repro.microblog`.
    """

    def __init__(self, tweets: Iterable[Tweet] = ()) -> None:
        self._tweets: list[Tweet] = list(tweets)
        if not all(isinstance(t, Tweet) for t in self._tweets):
            raise EstimationError("corpus members must be Tweet instances")

    # ------------------------------------------------------------------
    def append(self, tweet: Tweet) -> None:
        """Add one tweet to the corpus."""
        if not isinstance(tweet, Tweet):
            raise EstimationError("corpus members must be Tweet instances")
        self._tweets.append(tweet)

    def extend(self, tweets: Iterable[Tweet]) -> None:
        """Add many tweets to the corpus."""
        for tweet in tweets:
            self.append(tweet)

    def __len__(self) -> int:
        return len(self._tweets)

    def __iter__(self) -> Iterator[Tweet]:
        return iter(self._tweets)

    def __getitem__(self, index):
        return self._tweets[index]

    # ------------------------------------------------------------------
    @property
    def authors(self) -> set[str]:
        """Distinct tweet authors in the corpus."""
        return {t.author for t in self._tweets}

    @property
    def usernames(self) -> set[str]:
        """All usernames appearing as authors or inside retweet chains."""
        names: set[str] = set()
        for tweet in self._tweets:
            names.update(extract_retweet_chain(tweet))
        return names

    def retweet_pairs(self) -> Iterator[tuple[str, str]]:
        """Stream every retweet-relationship pair in the corpus."""
        for tweet in self._tweets:
            yield from extract_retweet_pairs(tweet)

    def retweet_count(self) -> int:
        """Total number of ``RT @`` markers across the corpus."""
        return sum(len(RETWEET_PATTERN.findall(t.text)) for t in self._tweets)

    # ------------------------------------------------------------------
    def save_jsonl(self, path: str | Path) -> None:
        """Persist the corpus as one JSON object per line."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for tweet in self._tweets:
                record = {
                    "author": tweet.author,
                    "text": tweet.text,
                    "tweet_id": tweet.tweet_id,
                    "created_at": tweet.created_at,
                }
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "TweetCorpus":
        """Load a corpus previously written by :meth:`save_jsonl`."""
        source = Path(path)
        tweets: list[Tweet] = []
        with source.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    tweets.append(
                        Tweet(
                            author=record["author"],
                            text=record["text"],
                            tweet_id=record.get("tweet_id", ""),
                            created_at=record.get("created_at", 0.0),
                        )
                    )
                except (json.JSONDecodeError, KeyError) as exc:
                    raise EstimationError(
                        f"malformed corpus line {line_number} in {source}: {exc}"
                    ) from exc
        return cls(tweets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TweetCorpus(tweets={len(self._tweets)}, authors={len(self.authors)})"
