"""End-to-end parameter-estimation pipeline — paper Figure 2, upper half.

Chains the Section 4 stages into one call:

    corpus --(Alg 5)--> retweet graph --(Alg 6/7)--> quality scores
           --(Sec 4.1.3)--> error rates --(Sec 4.2)--> requirements
           --> candidate Juror set

The output is a list of :class:`~repro.core.juror.Juror` objects ready for
the selectors, plus the intermediate artefacts for inspection.  The paper
keeps the top-scoring users only ("we simply choose the 5,000 users with
highest scores"); ``top_k`` reproduces that cut.

For a *continuously* re-estimated platform the one-shot handoff wastes
work: most users' estimates barely move between pipeline runs.
:func:`sync_pool_with_estimate` is the incremental mode — it diffs a fresh
:class:`EstimationResult` against a live registry pool
(:class:`repro.service.registry.LivePool`) and applies only the changed
jurors, so the pool's delta-maintained sweep state survives the refresh.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.juror import Juror
from repro.errors import EstimationError
from repro.estimation.error_rate import scores_to_error_rates
from repro.estimation.graph import UserGraph, build_user_graph
from repro.estimation.ranking import hits, pagerank
from repro.estimation.requirement import ages_to_requirements
from repro.estimation.tweets import TweetCorpus

__all__ = [
    "EstimationResult",
    "estimate_candidates",
    "PoolSyncReport",
    "sync_pool_with_estimate",
]


@dataclass
class EstimationResult:
    """All artefacts produced by :func:`estimate_candidates`.

    Attributes
    ----------
    jurors:
        Candidate jurors (id = username) with estimated error rates and
        requirements, sorted by descending quality score.
    scores:
        Username -> raw quality score (HITS authority or PageRank).
    error_rates:
        Username -> estimated individual error rate.
    requirements:
        Username -> estimated payment requirement (0.0 when no account ages
        were supplied, i.e. the AltrM setting).
    graph:
        The retweet user graph the ranking ran on.
    ranking:
        Which ranker produced the scores, ``"hits"`` or ``"pagerank"``.
    """

    jurors: list[Juror]
    scores: dict[str, float]
    error_rates: dict[str, float]
    requirements: dict[str, float]
    graph: UserGraph
    ranking: str

    def top(self, k: int) -> list[Juror]:
        """The ``k`` best candidates by quality score."""
        return self.jurors[:k]


def estimate_candidates(
    corpus: TweetCorpus,
    *,
    ranking: str = "hits",
    alpha: float = 10.0,
    beta: float = 10.0,
    top_k: int | None = None,
    account_ages: Mapping[str, float] | None = None,
    damping: float = 0.85,
) -> EstimationResult:
    """Run the full Section 4 estimation pipeline on a tweet corpus.

    Parameters
    ----------
    corpus:
        Raw tweets (real or simulated).
    ranking:
        ``"hits"`` (Algorithm 6 authority scores, the paper's default
        reading) or ``"pagerank"`` (Algorithm 7).
    alpha, beta:
        Error-rate normalisation factors (Section 4.1.3; paper uses 10, 10).
    top_k:
        Keep only the ``top_k`` highest-scoring users as candidates (the
        paper keeps 5,000 of 689,050).  ``None`` keeps everyone.
    account_ages:
        Optional username -> account age map for the PayM requirement
        estimate (Section 4.2).  Users missing from the map get age 0.
        When ``None``, all requirements are 0 (AltrM candidates).
    damping:
        PageRank damping factor (ignored for HITS).

    Returns
    -------
    EstimationResult

    Examples
    --------
    >>> from repro.estimation.tweets import Tweet, TweetCorpus
    >>> corpus = TweetCorpus([
    ...     Tweet("fan1", "RT @guru insight"),
    ...     Tweet("fan2", "RT @guru more insight"),
    ...     Tweet("guru", "original thought"),
    ... ])
    >>> result = estimate_candidates(corpus, ranking="pagerank")
    >>> best = result.jurors[0]
    >>> best.juror_id
    'guru'
    """
    if ranking not in ("hits", "pagerank"):
        raise EstimationError(
            f"ranking must be 'hits' or 'pagerank', got {ranking!r}"
        )
    graph = build_user_graph(corpus)
    if ranking == "hits":
        scores = hits(graph).authorities
    else:
        scores = pagerank(graph, damping=damping)

    # Rank users by score (descending); deterministic tie-break on name.
    ranked_users = sorted(scores, key=lambda u: (-scores[u], u))
    if top_k is not None:
        if top_k < 1:
            raise EstimationError(f"top_k must be positive, got {top_k!r}")
        ranked_users = ranked_users[:top_k]
        scores = {u: scores[u] for u in ranked_users}

    error_rates = scores_to_error_rates(scores, alpha=alpha, beta=beta)

    if account_ages is None:
        requirements = {u: 0.0 for u in ranked_users}
    else:
        ages = {u: float(account_ages.get(u, 0.0)) for u in ranked_users}
        requirements = ages_to_requirements(ages)

    jurors = [
        Juror(error_rates[u], requirements[u], juror_id=u) for u in ranked_users
    ]
    return EstimationResult(
        jurors=jurors,
        scores=dict(scores),
        error_rates=error_rates,
        requirements=requirements,
        graph=graph,
        ranking=ranking,
    )


@dataclass(frozen=True)
class PoolSyncReport:
    """What :func:`sync_pool_with_estimate` changed on a live pool.

    Attributes
    ----------
    added, removed, updated:
        Juror ids (sorted) that joined, left, or had their error rate /
        requirement re-estimated.
    unchanged:
        Number of jurors whose estimates were identical to the pool's.
    version:
        The pool version after applying the diff.
    """

    added: tuple[str, ...]
    removed: tuple[str, ...]
    updated: tuple[str, ...]
    unchanged: int
    version: int

    @property
    def churn(self) -> int:
        """Total number of mutations applied."""
        return len(self.added) + len(self.removed) + len(self.updated)

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"pool sync: +{len(self.added)} -{len(self.removed)} "
            f"~{len(self.updated)} ={self.unchanged} -> version {self.version}"
        )


def sync_pool_with_estimate(
    pool,
    estimation: "EstimationResult | Sequence[Juror]",
    *,
    top_k: int | None = None,
) -> PoolSyncReport:
    """Incrementally apply a fresh estimation result to a live pool.

    Diffs the target candidate set (an :class:`EstimationResult`, optionally
    cut to its ``top_k`` best-scored users, or any juror sequence) against
    the current members of ``pool`` and applies only the differences:
    departures are removed, arrivals added, and drifted estimates updated in
    place.  Jurors whose error rate and requirement are bit-equal to the
    pool's are not touched, so the pool's version advances by exactly the
    churn count and its delta-maintained sweep state keeps every unchanged
    prefix.

    Parameters
    ----------
    pool:
        A :class:`repro.service.registry.LivePool` (or anything with its
        mutation API: ``ordered``, ``add_juror``, ``remove_juror``,
        ``update_juror``, ``version``).
    estimation:
        The fresh pipeline output to converge the pool toward.
    top_k:
        Keep only the ``top_k`` best candidates of an
        :class:`EstimationResult` (the paper's 5,000-user cut); ignored for
        bare juror sequences.

    Returns
    -------
    PoolSyncReport
    """
    if isinstance(estimation, EstimationResult):
        target_jurors = estimation.top(top_k) if top_k is not None else estimation.jurors
    else:
        target_jurors = list(estimation)
    target = {j.juror_id: j for j in target_jurors}
    if len(target) != len(target_jurors):
        raise EstimationError("estimation result contains duplicate juror ids")
    current = {j.juror_id: j for j in pool.ordered}

    removed = sorted(set(current) - set(target))
    added = sorted(set(target) - set(current))
    updated = sorted(
        juror_id
        for juror_id in set(target) & set(current)
        if (
            target[juror_id].error_rate != current[juror_id].error_rate
            or target[juror_id].requirement != current[juror_id].requirement
        )
    )

    for juror_id in removed:
        pool.remove_juror(juror_id)
    for juror_id in added:
        pool.add_juror(target[juror_id])
    for juror_id in updated:
        pool.update_juror(
            juror_id,
            error_rate=target[juror_id].error_rate,
            requirement=target[juror_id].requirement,
        )

    return PoolSyncReport(
        added=tuple(added),
        removed=tuple(removed),
        updated=tuple(updated),
        unchanged=len(target) - len(added) - len(updated),
        version=pool.version,
    )
