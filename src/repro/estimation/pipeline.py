"""End-to-end parameter-estimation pipeline — paper Figure 2, upper half.

Chains the Section 4 stages into one call:

    corpus --(Alg 5)--> retweet graph --(Alg 6/7)--> quality scores
           --(Sec 4.1.3)--> error rates --(Sec 4.2)--> requirements
           --> candidate Juror set

The output is a list of :class:`~repro.core.juror.Juror` objects ready for
the selectors, plus the intermediate artefacts for inspection.  The paper
keeps the top-scoring users only ("we simply choose the 5,000 users with
highest scores"); ``top_k`` reproduces that cut.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.juror import Juror
from repro.errors import EstimationError
from repro.estimation.error_rate import scores_to_error_rates
from repro.estimation.graph import UserGraph, build_user_graph
from repro.estimation.ranking import hits, pagerank
from repro.estimation.requirement import ages_to_requirements
from repro.estimation.tweets import TweetCorpus

__all__ = ["EstimationResult", "estimate_candidates"]


@dataclass
class EstimationResult:
    """All artefacts produced by :func:`estimate_candidates`.

    Attributes
    ----------
    jurors:
        Candidate jurors (id = username) with estimated error rates and
        requirements, sorted by descending quality score.
    scores:
        Username -> raw quality score (HITS authority or PageRank).
    error_rates:
        Username -> estimated individual error rate.
    requirements:
        Username -> estimated payment requirement (0.0 when no account ages
        were supplied, i.e. the AltrM setting).
    graph:
        The retweet user graph the ranking ran on.
    ranking:
        Which ranker produced the scores, ``"hits"`` or ``"pagerank"``.
    """

    jurors: list[Juror]
    scores: dict[str, float]
    error_rates: dict[str, float]
    requirements: dict[str, float]
    graph: UserGraph
    ranking: str

    def top(self, k: int) -> list[Juror]:
        """The ``k`` best candidates by quality score."""
        return self.jurors[:k]


def estimate_candidates(
    corpus: TweetCorpus,
    *,
    ranking: str = "hits",
    alpha: float = 10.0,
    beta: float = 10.0,
    top_k: int | None = None,
    account_ages: Mapping[str, float] | None = None,
    damping: float = 0.85,
) -> EstimationResult:
    """Run the full Section 4 estimation pipeline on a tweet corpus.

    Parameters
    ----------
    corpus:
        Raw tweets (real or simulated).
    ranking:
        ``"hits"`` (Algorithm 6 authority scores, the paper's default
        reading) or ``"pagerank"`` (Algorithm 7).
    alpha, beta:
        Error-rate normalisation factors (Section 4.1.3; paper uses 10, 10).
    top_k:
        Keep only the ``top_k`` highest-scoring users as candidates (the
        paper keeps 5,000 of 689,050).  ``None`` keeps everyone.
    account_ages:
        Optional username -> account age map for the PayM requirement
        estimate (Section 4.2).  Users missing from the map get age 0.
        When ``None``, all requirements are 0 (AltrM candidates).
    damping:
        PageRank damping factor (ignored for HITS).

    Returns
    -------
    EstimationResult

    Examples
    --------
    >>> from repro.estimation.tweets import Tweet, TweetCorpus
    >>> corpus = TweetCorpus([
    ...     Tweet("fan1", "RT @guru insight"),
    ...     Tweet("fan2", "RT @guru more insight"),
    ...     Tweet("guru", "original thought"),
    ... ])
    >>> result = estimate_candidates(corpus, ranking="pagerank")
    >>> best = result.jurors[0]
    >>> best.juror_id
    'guru'
    """
    if ranking not in ("hits", "pagerank"):
        raise EstimationError(
            f"ranking must be 'hits' or 'pagerank', got {ranking!r}"
        )
    graph = build_user_graph(corpus)
    if ranking == "hits":
        scores = hits(graph).authorities
    else:
        scores = pagerank(graph, damping=damping)

    # Rank users by score (descending); deterministic tie-break on name.
    ranked_users = sorted(scores, key=lambda u: (-scores[u], u))
    if top_k is not None:
        if top_k < 1:
            raise EstimationError(f"top_k must be positive, got {top_k!r}")
        ranked_users = ranked_users[:top_k]
        scores = {u: scores[u] for u in ranked_users}

    error_rates = scores_to_error_rates(scores, alpha=alpha, beta=beta)

    if account_ages is None:
        requirements = {u: 0.0 for u in ranked_users}
    else:
        ages = {u: float(account_ages.get(u, 0.0)) for u in ranked_users}
        requirements = ages_to_requirements(ages)

    jurors = [
        Juror(error_rates[u], requirements[u], juror_id=u) for u in ranked_users
    ]
    return EstimationResult(
        jurors=jurors,
        scores=dict(scores),
        error_rates=error_rates,
        requirements=requirements,
        graph=graph,
        ranking=ranking,
    )
