"""Shared argument-validation helpers.

These helpers centralise the domain checks that recur throughout the library:
error rates must lie in the open interval ``(0, 1)`` (paper Definition 4),
payment requirements must be non-negative (Definition 8), juries must have odd
size (Section 2.1.1), and budgets must be non-negative finite numbers.

Every helper either returns a normalised value (e.g. a ``numpy`` array of
``float64``) or raises one of the exceptions from :mod:`repro.errors`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import (
    BudgetError,
    EmptyCandidateSetError,
    EvenJurySizeError,
    InvalidErrorRateError,
    InvalidJuryError,
    InvalidRequirementError,
)

__all__ = [
    "validate_error_rate",
    "validate_error_rates",
    "validate_requirement",
    "validate_requirements",
    "validate_budget",
    "validate_odd_size",
    "require_nonempty",
    "as_probability_array",
]


def validate_error_rate(epsilon: float, *, name: str = "epsilon") -> float:
    """Validate a single individual error rate.

    Parameters
    ----------
    epsilon:
        Probability of the juror voting against the latent ground truth.
    name:
        Identifier used in error messages.

    Returns
    -------
    float
        ``epsilon`` converted to a built-in :class:`float`.

    Raises
    ------
    InvalidErrorRateError
        If ``epsilon`` is not a finite number in the open interval ``(0, 1)``.
    """
    try:
        value = float(epsilon)
    except (TypeError, ValueError) as exc:
        raise InvalidErrorRateError(f"{name} must be a real number, got {epsilon!r}") from exc
    if not math.isfinite(value) or not 0.0 < value < 1.0:
        raise InvalidErrorRateError(
            f"{name} must lie in the open interval (0, 1), got {value!r}"
        )
    return value


def validate_error_rates(epsilons: Iterable[float], *, name: str = "epsilons") -> np.ndarray:
    """Validate a collection of error rates and return a float64 array.

    Raises
    ------
    InvalidErrorRateError
        If any entry falls outside ``(0, 1)`` or is not finite.
    """
    arr = np.asarray(list(epsilons) if not isinstance(epsilons, np.ndarray) else epsilons,
                     dtype=np.float64)
    if arr.ndim != 1:
        raise InvalidErrorRateError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr <= 0.0) or np.any(arr >= 1.0)):
        bad = arr[~(np.isfinite(arr) & (arr > 0.0) & (arr < 1.0))]
        raise InvalidErrorRateError(
            f"all {name} must lie in (0, 1); offending values: {bad[:5].tolist()}"
        )
    return arr


def validate_requirement(requirement: float, *, name: str = "requirement") -> float:
    """Validate a single payment requirement (PayM, Definition 8)."""
    try:
        value = float(requirement)
    except (TypeError, ValueError) as exc:
        raise InvalidRequirementError(
            f"{name} must be a real number, got {requirement!r}"
        ) from exc
    if not math.isfinite(value) or value < 0.0:
        raise InvalidRequirementError(
            f"{name} must be a non-negative finite number, got {value!r}"
        )
    return value


def validate_requirements(
    requirements: Iterable[float], *, name: str = "requirements"
) -> np.ndarray:
    """Validate a collection of payment requirements, returning float64 array."""
    arr = np.asarray(
        list(requirements) if not isinstance(requirements, np.ndarray) else requirements,
        dtype=np.float64,
    )
    if arr.ndim != 1:
        raise InvalidRequirementError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr < 0.0)):
        bad = arr[~(np.isfinite(arr) & (arr >= 0.0))]
        raise InvalidRequirementError(
            f"all {name} must be non-negative finite numbers; offending values: "
            f"{bad[:5].tolist()}"
        )
    return arr


def validate_budget(budget: float) -> float:
    """Validate a PayM budget ``B >= 0`` (Definition 8)."""
    try:
        value = float(budget)
    except (TypeError, ValueError) as exc:
        raise BudgetError(f"budget must be a real number, got {budget!r}") from exc
    if not math.isfinite(value) or value < 0.0:
        raise BudgetError(f"budget must be a non-negative finite number, got {value!r}")
    return value


def validate_odd_size(n: int, *, name: str = "jury size") -> int:
    """Check that a jury size is a positive odd integer (Section 2.1.1)."""
    if not isinstance(n, (int, np.integer)):
        raise InvalidJuryError(f"{name} must be an integer, got {type(n).__name__}")
    size = int(n)
    if size < 1:
        raise InvalidJuryError(f"{name} must be positive, got {size}")
    if size % 2 == 0:
        raise EvenJurySizeError(
            f"{name} must be odd so that Majority Voting is well defined, got {size}"
        )
    return size


def require_nonempty(candidates: Sequence, *, name: str = "candidate set") -> None:
    """Raise :class:`EmptyCandidateSetError` when ``candidates`` is empty."""
    if len(candidates) == 0:
        raise EmptyCandidateSetError(f"{name} must not be empty")


def as_probability_array(values: Iterable[float], *, name: str = "probabilities") -> np.ndarray:
    """Coerce to a float64 array of probabilities in the closed interval [0, 1]."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                     dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr < 0.0) or np.any(arr > 1.0)):
        raise ValueError(f"all {name} must lie in [0, 1]")
    return arr
