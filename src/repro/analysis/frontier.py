"""Budget/quality frontier analysis for PayM deployments.

Practitioners rarely ask "what is the best jury for budget B?" once — they
ask "how does quality respond to budget, and what is the cheapest budget
that reaches my target error rate?".  This module sweeps a selector over a
budget grid to build the (budget, JER) frontier and bisects it for
budget-for-target queries.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.juror import Juror
from repro.core.selection.base import SelectionResult
from repro.core.selection.pay import select_jury_pay
from repro.errors import InfeasibleSelectionError, ReproError

__all__ = ["FrontierPoint", "budget_frontier", "minimal_budget_for_target"]

Selector = Callable[[Sequence[Juror], float], SelectionResult]


@dataclass(frozen=True)
class FrontierPoint:
    """One point of the budget/quality frontier.

    Attributes
    ----------
    budget:
        The budget handed to the selector.
    jer:
        JER of the selected jury (``None`` when the budget was infeasible).
    size:
        Selected jury size (0 when infeasible).
    cost:
        Actual spending (0.0 when infeasible).
    """

    budget: float
    jer: float | None
    size: int
    cost: float

    @property
    def feasible(self) -> bool:
        """Whether any jury was affordable at this budget."""
        return self.jer is not None


def _default_selector(candidates: Sequence[Juror], budget: float) -> SelectionResult:
    return select_jury_pay(candidates, budget=budget)


def budget_frontier(
    candidates: Sequence[Juror],
    budgets: Sequence[float],
    *,
    selector: Selector | None = None,
) -> list[FrontierPoint]:
    """Evaluate a selector across a budget grid.

    Parameters
    ----------
    candidates:
        Candidate jurors.
    budgets:
        Budgets to evaluate (any order; returned sorted ascending).
    selector:
        ``(candidates, budget) -> SelectionResult``; defaults to PayALG.
        Pass :func:`~repro.core.selection.exact.branch_and_bound_optimal`
        (wrapped) for exact frontiers on small candidate sets.

    Returns
    -------
    list[FrontierPoint]
        One point per budget, sorted by budget.

    >>> from repro.core.juror import jurors_from_arrays
    >>> cands = jurors_from_arrays([0.1, 0.2, 0.3], [0.5, 0.5, 0.5])
    >>> points = budget_frontier(cands, [0.4, 1.6])
    >>> points[0].feasible, points[1].size
    (False, 3)
    """
    if not budgets:
        raise ReproError("at least one budget is required")
    chosen = selector if selector is not None else _default_selector
    points: list[FrontierPoint] = []
    for budget in sorted(float(b) for b in budgets):
        try:
            result = chosen(candidates, budget)
        except InfeasibleSelectionError:
            points.append(FrontierPoint(budget=budget, jer=None, size=0, cost=0.0))
            continue
        points.append(
            FrontierPoint(
                budget=budget,
                jer=result.jer,
                size=result.size,
                cost=result.total_cost,
            )
        )
    return points


def minimal_budget_for_target(
    candidates: Sequence[Juror],
    target_jer: float,
    *,
    selector: Selector | None = None,
    budget_ceiling: float | None = None,
    tolerance: float = 1e-3,
    max_iterations: int = 60,
) -> float | None:
    """Smallest budget at which the selector reaches ``target_jer``.

    Bisects on the budget axis.  Greedy selectors are not perfectly monotone
    in budget, so the answer is exact for monotone selectors (e.g. the exact
    optimum) and a good approximation for PayALG.

    Parameters
    ----------
    candidates:
        Candidate jurors.
    target_jer:
        Desired maximum JER in ``(0, 1)``.
    selector:
        As in :func:`budget_frontier`.
    budget_ceiling:
        Upper end of the search; defaults to the total cost of all
        candidates (enough to afford everyone).
    tolerance:
        Absolute budget precision of the bisection.
    max_iterations:
        Safety cap on bisection steps.

    Returns
    -------
    float or None
        The budget, or ``None`` when even the ceiling cannot reach the
        target.
    """
    if not 0.0 < target_jer < 1.0:
        raise ReproError(f"target_jer must lie in (0, 1), got {target_jer!r}")
    chosen = selector if selector is not None else _default_selector
    high = (
        float(budget_ceiling)
        if budget_ceiling is not None
        else sum(j.requirement for j in candidates)
    )

    def achieves(budget: float) -> bool:
        try:
            return chosen(candidates, budget).jer <= target_jer + 1e-15
        except InfeasibleSelectionError:
            return False

    if not achieves(high):
        return None
    low = 0.0
    if achieves(low):
        return 0.0
    for _ in range(max_iterations):
        if high - low <= tolerance:
            break
        mid = (low + high) / 2.0
        if achieves(mid):
            high = mid
        else:
            low = mid
    return high
