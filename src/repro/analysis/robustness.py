"""Robustness of jury selection to error-rate estimation noise.

The selectors treat the estimated ``eps_i`` as exact, but Section 4's
estimates come from graph heuristics.  This module quantifies the damage:
perturb the estimates, re-select on the noisy values, and score the chosen
jury under the *true* rates — the "regret" relative to selecting with
perfect information.  Used by the failure-injection tests and available to
downstream users deciding how much estimation accuracy they need.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.jer import jury_error_rate
from repro.core.juror import Juror
from repro.core.selection.altr import select_jury_altr
from repro.core.selection.base import SelectionResult
from repro.errors import ReproError

__all__ = ["NoiseTrial", "RobustnessReport", "selection_regret_under_noise"]

Selector = Callable[[Sequence[Juror]], SelectionResult]


@dataclass(frozen=True)
class NoiseTrial:
    """One perturb-and-reselect trial.

    Attributes
    ----------
    noisy_jer_believed:
        JER the selector *believed* it achieved (computed on noisy rates).
    true_jer:
        JER of the selected jury under the true rates.
    regret:
        ``true_jer - oracle_jer`` where the oracle selects with the true
        rates; non-negative up to floating noise.
    """

    noisy_jer_believed: float
    true_jer: float
    regret: float


@dataclass(frozen=True)
class RobustnessReport:
    """Aggregate of :func:`selection_regret_under_noise`.

    Attributes
    ----------
    noise_sigma:
        Standard deviation of the injected (truncated) Gaussian noise.
    oracle_jer:
        JER achieved with perfect knowledge of the rates.
    mean_true_jer / worst_true_jer:
        Average and worst realised JER across trials.
    mean_regret:
        Average regret.
    trials:
        List of per-trial records.
    """

    noise_sigma: float
    oracle_jer: float
    mean_true_jer: float
    worst_true_jer: float
    mean_regret: float
    trials: list[NoiseTrial]


def selection_regret_under_noise(
    true_error_rates: Sequence[float],
    *,
    noise_sigma: float,
    n_trials: int = 20,
    selector: Selector | None = None,
    rng: np.random.Generator | None = None,
) -> RobustnessReport:
    """Measure selection regret when error rates are observed with noise.

    For each trial: add ``N(0, noise_sigma^2)`` to every true rate (clipped
    into the open unit interval), run the selector on the noisy candidates,
    then evaluate the selected juror subset under the *true* rates.

    Parameters
    ----------
    true_error_rates:
        Ground-truth individual error rates.
    noise_sigma:
        Perturbation scale (0 reproduces the oracle exactly).
    n_trials:
        Number of noise draws.
    selector:
        Candidate-list selector; defaults to AltrALG.
    rng:
        Random generator.

    >>> report = selection_regret_under_noise(
    ...     [0.1, 0.2, 0.3, 0.4, 0.45], noise_sigma=0.0, n_trials=2)
    >>> report.mean_regret == 0.0
    True
    """
    rates = [float(e) for e in true_error_rates]
    if not rates:
        raise ReproError("at least one candidate is required")
    if noise_sigma < 0.0:
        raise ReproError(f"noise_sigma must be non-negative, got {noise_sigma!r}")
    if n_trials < 1:
        raise ReproError(f"n_trials must be positive, got {n_trials!r}")
    generator = rng if rng is not None else np.random.default_rng()
    chosen = selector if selector is not None else select_jury_altr

    true_by_id = {f"c{i}": e for i, e in enumerate(rates)}
    oracle_candidates = [Juror(e, juror_id=f"c{i}") for i, e in enumerate(rates)]
    oracle = chosen(oracle_candidates)
    oracle_jer = jury_error_rate([true_by_id[i] for i in oracle.juror_ids])

    trials: list[NoiseTrial] = []
    for _ in range(n_trials):
        noisy = np.clip(
            np.asarray(rates) + generator.normal(0.0, noise_sigma, len(rates)),
            1e-4,
            1.0 - 1e-4,
        )
        candidates = [
            Juror(float(e), juror_id=f"c{i}") for i, e in enumerate(noisy)
        ]
        result = chosen(candidates)
        true_jer = jury_error_rate([true_by_id[i] for i in result.juror_ids])
        trials.append(
            NoiseTrial(
                noisy_jer_believed=result.jer,
                true_jer=true_jer,
                regret=true_jer - oracle_jer,
            )
        )
    true_jers = [t.true_jer for t in trials]
    return RobustnessReport(
        noise_sigma=noise_sigma,
        oracle_jer=oracle_jer,
        mean_true_jer=float(np.mean(true_jers)),
        worst_true_jer=float(np.max(true_jers)),
        mean_regret=float(np.mean([t.regret for t in trials])),
        trials=trials,
    )
