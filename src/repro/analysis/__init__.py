"""Analysis utilities layered on the core selectors.

* :mod:`~repro.analysis.diagnostics` — one-stop jury reports (JER, bounds,
  sensitivity, weighted-voting overhead, Monte-Carlo check);
* :mod:`~repro.analysis.frontier` — budget/quality frontiers and
  budget-for-target queries under PayM;
* :mod:`~repro.analysis.robustness` — selection regret under error-rate
  estimation noise.
"""

from repro.analysis.diagnostics import JuryDiagnostics, diagnose_jury
from repro.analysis.frontier import (
    FrontierPoint,
    budget_frontier,
    minimal_budget_for_target,
)
from repro.analysis.robustness import (
    NoiseTrial,
    RobustnessReport,
    selection_regret_under_noise,
)
from repro.analysis.uncertainty import (
    JERInterval,
    binomial_stderrs,
    jer_confidence_interval,
)

__all__ = [
    "JuryDiagnostics",
    "diagnose_jury",
    "FrontierPoint",
    "budget_frontier",
    "minimal_budget_for_target",
    "NoiseTrial",
    "RobustnessReport",
    "selection_regret_under_noise",
    "JERInterval",
    "binomial_stderrs",
    "jer_confidence_interval",
]
