"""One-stop jury diagnostics: everything you'd want to know before asking.

Bundles the library's analytic machinery into a single report for a given
jury: the JER with applicable bounds, per-juror sensitivity (pivot
probabilities from the Lemma 3 decomposition), the optimal-weighted error
rate (how much plain majority voting gives up), cost accounting, and an
optional Monte-Carlo cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bounds import (
    cantelli_upper_bound,
    paley_zygmund_lower_bound,
)
from repro.core.jer import jury_error_rate
from repro.core.juror import Jury
from repro.core.sensitivity import JurorInfluence, juror_influence_report
from repro.core.weighted import weighted_jury_error_rate
from repro.simulation.voting_sim import JERValidation, validate_jer

__all__ = ["JuryDiagnostics", "diagnose_jury"]


@dataclass(frozen=True)
class JuryDiagnostics:
    """Full analytic profile of one jury.

    Attributes
    ----------
    jury:
        The analysed jury.
    jer:
        Exact Jury Error Rate under Majority Voting.
    weighted_jer:
        Error rate under optimal (Nitzan-Paroush) weighted voting — the
        best any aggregation of the same votes can do.
    majority_overhead:
        ``jer - weighted_jer``: what plain majority voting leaves on the
        table for this jury.
    lower_bound:
        Paley-Zygmund lower bound (``None`` when inapplicable, i.e. the jury
        is expected to win the majority).
    upper_bound:
        Cantelli upper bound (1.0 when vacuous).
    influences:
        Per-juror sensitivity records, most pivotal first.
    total_cost:
        Sum of payment requirements.
    validation:
        Monte-Carlo cross-check (``None`` unless requested).
    """

    jury: Jury
    jer: float
    weighted_jer: float
    majority_overhead: float
    lower_bound: float | None
    upper_bound: float
    influences: list[JurorInfluence] = field(default_factory=list)
    total_cost: float = 0.0
    validation: JERValidation | None = None

    @property
    def most_pivotal(self) -> JurorInfluence:
        """The juror the JER is most sensitive to."""
        return self.influences[0]

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"jury of {self.jury.size} (cost {self.total_cost:.4g})",
            f"  JER (majority voting)      : {self.jer:.6g}",
            f"  JER (optimal weighted)     : {self.weighted_jer:.6g}"
            f"  [overhead {self.majority_overhead:.3g}]",
            f"  Cantelli upper bound       : {self.upper_bound:.6g}",
        ]
        if self.lower_bound is not None:
            lines.append(f"  Paley-Zygmund lower bound  : {self.lower_bound:.6g}")
        top = self.most_pivotal
        lines.append(
            f"  most pivotal juror         : {top.juror_id} "
            f"(dJER/deps = {top.pivotal_probability:.4g})"
        )
        if self.validation is not None:
            lines.append(
                f"  Monte-Carlo check          : empirical "
                f"{self.validation.empirical:.6g} over "
                f"{self.validation.trials} votings "
                f"(z = {self.validation.z_score:+.2f})"
            )
        return "\n".join(lines)


def diagnose_jury(
    jury: Jury,
    *,
    monte_carlo_trials: int = 0,
    rng: np.random.Generator | None = None,
) -> JuryDiagnostics:
    """Compute a :class:`JuryDiagnostics` report for ``jury``.

    Parameters
    ----------
    jury:
        An odd-sized jury.
    monte_carlo_trials:
        When positive, additionally run a Monte-Carlo validation with this
        many simulated votings.
    rng:
        Generator for the Monte-Carlo check.

    >>> from repro.core.juror import Jury
    >>> report = diagnose_jury(Jury.from_error_rates([0.1, 0.2, 0.2]))
    >>> round(report.jer, 3)
    0.072
    >>> report.weighted_jer <= report.jer
    True
    """
    eps = list(jury.error_rates)
    jer = jury_error_rate(eps)
    weighted = weighted_jury_error_rate(jury)
    validation = (
        validate_jer(jury, trials=monte_carlo_trials, rng=rng)
        if monte_carlo_trials > 0
        else None
    )
    return JuryDiagnostics(
        jury=jury,
        jer=jer,
        weighted_jer=weighted,
        majority_overhead=jer - weighted,
        lower_bound=paley_zygmund_lower_bound(eps),
        upper_bound=cantelli_upper_bound(eps),
        influences=juror_influence_report(jury),
        total_cost=jury.total_cost,
        validation=validation,
    )
