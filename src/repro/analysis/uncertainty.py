"""Uncertainty propagation: confidence intervals on the JER.

The selectors treat estimated error rates as exact, but every estimator in
:mod:`repro.estimation` (graph heuristics, EM from finite histories) carries
sampling error.  Because :func:`repro.core.sensitivity.jer_gradient` gives
the *exact* partial derivatives of the JER, the delta method propagates
per-juror standard errors straight to a JER interval:

    ``Var(JER) ~ sum_i (dJER/deps_i)^2 * stderr_i^2``

For error rates estimated from ``T_i`` historical observations per juror the
natural plug-in is the binomial standard error
``sqrt(eps_i (1 - eps_i) / T_i)`` (:func:`binomial_stderrs`).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro._validation import validate_error_rates
from repro.core.jer import jury_error_rate
from repro.core.sensitivity import jer_gradient
from repro.errors import ReproError

__all__ = ["JERInterval", "binomial_stderrs", "jer_confidence_interval"]


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF via the erfc-based bisection-free form."""
    try:
        from scipy.stats import norm

        return float(norm.ppf(p))
    except ImportError:  # pragma: no cover - scipy is a test extra
        # Acklam-style rational approximation, good to ~1e-9.
        return _acklam_ppf(p)


def _acklam_ppf(p: float) -> float:  # pragma: no cover - scipy fallback
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


@dataclass(frozen=True)
class JERInterval:
    """A confidence interval on the Jury Error Rate.

    Attributes
    ----------
    point:
        The plug-in JER at the estimated error rates.
    low, high:
        Interval endpoints, clipped into [0, 1].
    stderr:
        Propagated standard error of the JER.
    confidence:
        Nominal coverage level.
    """

    point: float
    low: float
    high: float
    stderr: float
    confidence: float

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def binomial_stderrs(
    error_rates: Iterable[float], observations: Sequence[int] | int
) -> np.ndarray:
    """Binomial standard errors for rates estimated from vote histories.

    Parameters
    ----------
    error_rates:
        Estimated error rates.
    observations:
        Per-juror observation counts, or a single count shared by all.

    >>> float(binomial_stderrs([0.5], 100)[0])
    0.05
    """
    eps = validate_error_rates(error_rates, name="error rates")
    if isinstance(observations, (int, np.integer)):
        counts = np.full(eps.size, int(observations), dtype=np.float64)
    else:
        counts = np.asarray(list(observations), dtype=np.float64)
    if counts.size != eps.size:
        raise ReproError(
            f"observation counts ({counts.size}) do not match juror count "
            f"({eps.size})"
        )
    if np.any(counts < 1):
        raise ReproError("every juror needs at least one observation")
    return np.sqrt(eps * (1.0 - eps) / counts)


def jer_confidence_interval(
    error_rates: Iterable[float],
    stderrs: Iterable[float],
    *,
    confidence: float = 0.95,
) -> JERInterval:
    """Delta-method confidence interval on the JER.

    Parameters
    ----------
    error_rates:
        Estimated individual error rates (odd count).
    stderrs:
        Standard error of each estimate (independent errors assumed).
    confidence:
        Nominal coverage in (0, 1).

    Returns
    -------
    JERInterval

    Examples
    --------
    >>> interval = jer_confidence_interval([0.2, 0.3, 0.3], [0.01] * 3)
    >>> interval.contains(interval.point)
    True
    >>> interval.width < 0.1
    True
    """
    eps = validate_error_rates(error_rates, name="error rates")
    sig = np.asarray(list(stderrs), dtype=np.float64)
    if sig.size != eps.size:
        raise ReproError(
            f"stderr count ({sig.size}) does not match juror count ({eps.size})"
        )
    if np.any(sig < 0.0) or not np.all(np.isfinite(sig)):
        raise ReproError("stderrs must be non-negative finite numbers")
    if not 0.0 < confidence < 1.0:
        raise ReproError(f"confidence must lie in (0, 1), got {confidence!r}")

    point = jury_error_rate(eps)
    gradient = jer_gradient(eps)
    variance = float(np.sum((gradient * sig) ** 2))
    stderr = math.sqrt(variance)
    z = _normal_quantile(0.5 + confidence / 2.0)
    return JERInterval(
        point=point,
        low=max(0.0, point - z * stderr),
        high=min(1.0, point + z * stderr),
        stderr=stderr,
        confidence=confidence,
    )
