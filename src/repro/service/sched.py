"""Cost-aware shard scheduling: the placement *policy* layer.

:mod:`repro.service.shard` provides the mechanism — :class:`~repro.service.shard.WorkUnit`
batches executed by :meth:`~repro.service.shard.ShardedExecutor.run_schedule`
with optional stealing, and bit-identical merging of split exact
enumerations.  This module decides *what the units are*:

``hash`` policy (the oracle path)
    Exactly the pre-scheduler dispatch: one unit per
    ``shard_of(fingerprint)`` shard, no splitting, no stealing.  Kept
    selectable forever so the cost policy always has an in-tree behavioural
    oracle.

``cost`` policy (default)
    Payloads are grouped by pool fingerprint (so worker-local sweep caches
    and stacked sweeps keep working), each group weighted by the planner's
    calibrated :func:`repro.plan.cost.plan_cost` estimate, and the groups
    bin-packed across shards by LPT (longest-processing-time-first: sort by
    descending weight, always place on the least-loaded shard).  Ties break
    toward ``shard_of(fingerprint)`` — on a balanced stream the cost policy
    therefore *degenerates to* fingerprint hashing and worker caches stay
    hot; only genuine skew moves work.  Heavy exact enumerations are
    **split** into candidate-range sub-payloads
    (:func:`enumeration_split_ranges` balances the ranges by their exact
    combination counts) that fan out across shards and merge bit-identically
    in the parent.  Each shard's groups coalesce into at most
    :data:`MAX_UNITS_PER_SHARD` units so there is still something to
    **steal** when a queue drains early.

Everything here is deterministic: weights come from the pure cost model,
LPT order is total (weight, then arrival), and placement cannot affect
answers — only timing.  The policy is selected per engine via
``BatchSelectionEngine(scheduler=...)``, the ``REPRO_SCHEDULER`` env var, or
``--scheduler`` on the CLI entry points.
"""

from __future__ import annotations

import math
import os
from collections.abc import Sequence
from dataclasses import replace

from repro.core.selection.exact import _ENUMERATION_LIMIT
from repro.plan.cost import plan_cost
from repro.service.shard import (
    PlanPayload,
    PoolColumns,
    ShardedExecutor,
    WorkUnit,
    hash_units,
)

__all__ = [
    "DEFAULT_SCHEDULER_POLICY",
    "MAX_UNITS_PER_SHARD",
    "SCHEDULER_ENV_VAR",
    "SCHEDULER_POLICIES",
    "SPLIT_MIN_COST",
    "WorkScheduler",
    "balance_groups",
    "enumeration_split_ranges",
    "scheduler_policy_from_env",
]

#: Environment variable selecting the scheduling policy for services that
#: are not given one explicitly (mirrors ``REPRO_WORKERS`` / ``REPRO_KERNEL_BACKEND``).
SCHEDULER_ENV_VAR = "REPRO_SCHEDULER"

SCHEDULER_POLICIES = ("cost", "hash")

DEFAULT_SCHEDULER_POLICY = "cost"

#: Minimum :func:`plan_cost` weight before a heavy ``exact-enumerate`` query
#: is split into candidate-range sub-payloads.  5e4 ops corresponds to an
#: affordable candidate count around 12 — below that a split's dispatch
#: overhead exceeds the enumeration itself.
SPLIT_MIN_COST = 5e4

#: Ceiling on how many work units one shard's groups coalesce into.  More
#: units mean finer-grained stealing; fewer mean bigger stacked sweeps and
#: less dispatch overhead.  Four keeps both within ~25% of their best.
MAX_UNITS_PER_SHARD = 4


def scheduler_policy_from_env() -> str:
    """The ``REPRO_SCHEDULER`` policy, or the default when unset/invalid.

    Lenient like the other env knobs: services must come up even under a
    stale or mistyped environment, so unrecognised values fall back to the
    default rather than raising.
    """
    raw = os.environ.get(SCHEDULER_ENV_VAR, "")
    policy = raw.strip().lower()
    return policy if policy in SCHEDULER_POLICIES else DEFAULT_SCHEDULER_POLICY


def _first_index_weights(n_eff: int, limit: int) -> list[float]:
    """Exact per-first-index work of the range-partitioned enumeration.

    A combination whose smallest member is index ``f`` chooses its remaining
    ``k - 1`` members from the ``n_eff - 1 - f`` candidates above ``f``; at
    size ``k`` that is ``C(n_eff - 1 - f, k - 1)`` combinations, each costing
    ``k^2`` pmf-extension work — the same per-combination model
    :func:`repro.plan.cost._enumeration_ops` uses, so range weights and the
    plan's total estimate are consistent.
    """
    weights: list[float] = []
    for first in range(n_eff):
        above = n_eff - 1 - first
        total = 0.0
        for k in range(1, limit + 1, 2):
            if k - 1 > above:
                break
            total += math.comb(above, k - 1) * k * k
        weights.append(total)
    return weights


def enumeration_split_ranges(
    n_eff: int, limit: int, parts: int
) -> list[tuple[int, int]]:
    """Partition ``[0, n_eff)`` first-indices into ~equal-work ranges.

    Enumeration work is extremely front-loaded (index 0 anchors nearly half
    of all combinations), so equal-width ranges would be useless; this
    greedily cuts the exact per-index weight profile so every range carries
    about ``1/parts`` of the remaining work.  Always returns non-empty,
    contiguous, disjoint ranges covering ``[0, n_eff)`` — the partition
    property the bit-identical merge depends on.
    """
    parts = max(1, min(parts, n_eff))
    if parts == 1:
        return [(0, n_eff)]
    weights = _first_index_weights(n_eff, limit)
    total = sum(weights)
    if total <= 0:
        return [(0, n_eff)]
    ranges: list[tuple[int, int]] = []
    lo = 0
    consumed = 0.0
    for part in range(parts - 1):
        target = (total - consumed) / (parts - part)
        hi = lo
        acc = 0.0
        # Leave at least one index for each remaining range.
        while hi < n_eff - (parts - 1 - part) and acc < target:
            acc += weights[hi]
            hi += 1
        if hi == lo:
            hi = lo + 1
            acc = weights[lo]
        ranges.append((lo, hi))
        consumed += acc
        lo = hi
    ranges.append((lo, n_eff))
    return [r for r in ranges if r[0] < r[1]]


def balance_groups(weights: Sequence[float], parts: int) -> list[int]:
    """LPT assignment of weighted groups to ``parts`` bins.

    Returns the bin index per group (aligned with ``weights``).
    Deterministic: groups are placed in descending-weight order (arrival
    order within equal weights) on the currently lightest bin (lowest index
    within equal loads).  Used for shard bin-packing and the async drainer's
    fan-out.
    """
    parts = max(1, parts)
    loads = [0.0] * parts
    assignment = [0] * len(weights)
    order = sorted(range(len(weights)), key=lambda g: (-weights[g], g))
    for g in order:
        bin_index = min(range(parts), key=lambda p: (loads[p], p))
        assignment[g] = bin_index
        loads[bin_index] += weights[g]
    return assignment


class _Group:
    """One indivisible scheduling group: payloads that must share a unit."""

    __slots__ = ("fingerprint", "payloads", "weight", "seq")

    def __init__(self, fingerprint: str, seq: int) -> None:
        self.fingerprint = fingerprint
        self.payloads: list[tuple[int, PlanPayload]] = []
        self.weight = 0.0
        self.seq = seq


class WorkScheduler:
    """Turns a planned batch into placed :class:`WorkUnit`s under a policy.

    Stateless between calls (balancing is per batch, so a one-query batch
    always lands on its affinity shard and worker caches stay hot); safe to
    share across the async drainer's fan-out threads.
    """

    def __init__(self, policy: str | None = None) -> None:
        if policy is None:
            policy = scheduler_policy_from_env()
        else:
            policy = policy.strip().lower()
            if policy not in SCHEDULER_POLICIES:
                raise ValueError(
                    f"unknown scheduler policy {policy!r}; "
                    f"expected one of {SCHEDULER_POLICIES}"
                )
        self._policy = policy

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def steal_enabled(self) -> bool:
        """Whether :meth:`~ShardedExecutor.run_schedule` should steal."""
        return self._policy == "cost"

    def build(
        self,
        payloads: Sequence[tuple[int, PlanPayload]],
        blocks: dict[str, PoolColumns],
        executor: ShardedExecutor,
    ) -> tuple[list[WorkUnit], int]:
        """Assemble work units for one batch; returns ``(units, splits)``.

        ``splits`` counts the queries that were split into candidate-range
        sub-payloads (0 under ``hash``, or whenever nothing is heavy enough).
        """
        if not payloads:
            return [], 0
        if self._policy == "hash" or executor.workers <= 1:
            return hash_units(executor, payloads, blocks), 0

        workers = executor.workers
        # Phase 1 — split heavy exact enumerations into range sub-payloads.
        splits = 0
        groups: dict[object, _Group] = {}
        can_split = not executor.in_process
        for key, payload in payloads:
            parts = self._split_payload(payload, workers) if can_split else None
            if parts is not None:
                splits += 1
                for sub_payload, sub_weight in parts:
                    group = _Group(payload.fingerprint, len(groups))
                    group.payloads.append((key, sub_payload))
                    group.weight = sub_weight
                    groups[("split", key, sub_payload.split)] = group
                continue
            group = groups.get(("pool", payload.fingerprint))
            if group is None:
                group = _Group(payload.fingerprint, len(groups))
                groups[("pool", payload.fingerprint)] = group
            weight = plan_cost(payload)
            if payload.operator == "altr-sweep" and any(
                p.operator == "altr-sweep" for _, p in group.payloads
            ):
                # The pool's sweep runs once per unit however many AltrM
                # queries reference it; repeats only pay the frontier-style
                # profile scan.
                weight = max(1.0, payload.cost.pool_size / 2.0)
            group.payloads.append((key, payload))
            group.weight += weight

        # Phase 2 — LPT bin-packing of groups onto shards, fingerprint
        # affinity as the tie-break so a balanced stream degenerates to
        # hashing (and worker-local caches keep hitting).
        ordered = sorted(groups.values(), key=lambda g: (-g.weight, g.seq))
        loads = [0.0] * workers
        placed: list[list[_Group]] = [[] for _ in range(workers)]
        for group in ordered:
            lightest = min(loads)
            affinity = executor.shard_of(group.fingerprint)
            if loads[affinity] <= lightest:
                shard = affinity
            else:
                shard = min(range(workers), key=lambda s: (loads[s], s))
            placed[shard].append(group)
            loads[shard] += group.weight

        # Phase 3 — coalesce each shard's groups into at most
        # MAX_UNITS_PER_SHARD units (groups never split across units), so
        # stacked sweeps stay batched but queues keep something stealable.
        units: list[WorkUnit] = []
        for shard, shard_groups in enumerate(placed):
            if not shard_groups:
                continue
            n_units = min(MAX_UNITS_PER_SHARD, len(shard_groups))
            buckets = balance_groups([g.weight for g in shard_groups], n_units)
            by_bucket: list[list[_Group]] = [[] for _ in range(n_units)]
            for group, bucket in zip(shard_groups, buckets):
                by_bucket[bucket].append(group)
            for bucket_groups in by_bucket:
                if not bucket_groups:
                    continue
                unit_payloads = [
                    item
                    for group in sorted(bucket_groups, key=lambda g: g.seq)
                    for item in group.payloads
                ]
                unit_blocks = {
                    payload.fingerprint: blocks[payload.fingerprint]
                    for _, payload in unit_payloads
                }
                units.append(
                    WorkUnit(
                        shard=shard,
                        payloads=unit_payloads,
                        blocks=unit_blocks,
                        cost=sum(g.weight for g in bucket_groups),
                    )
                )
        return units, splits

    def _split_payload(
        self, payload: PlanPayload, workers: int
    ) -> list[tuple[PlanPayload, float]] | None:
        """Range sub-payloads (with weights) for a heavy exact enumeration.

        Only ``exact-enumerate`` plans split — their first-index axis
        partitions exactly — and only when the whole query is heavy enough
        and small enough that every sub-range executes the same guarded
        enumeration the unsplit operator would (``n_eff`` within the
        enumerator's N <= 20 limit; beyond it the unsplit payload raises in
        the worker, and a split must fail identically — so it must not
        split).
        """
        if self._policy != "cost" or workers <= 1:
            return None
        if payload.operator != "exact-enumerate" or payload.split is not None:
            return None
        n_eff = int(getattr(payload.cost, "affordable", 0))
        if n_eff < 4 or n_eff > _ENUMERATION_LIMIT:
            return None
        total_cost = plan_cost(payload)
        if total_cost < SPLIT_MIN_COST:
            return None
        limit = n_eff if payload.max_size is None else min(payload.max_size, n_eff)
        ranges = enumeration_split_ranges(n_eff, limit, min(workers, 8))
        if len(ranges) <= 1:
            return None
        weights = _first_index_weights(n_eff, limit)
        total_weight = sum(weights) or 1.0
        parts: list[tuple[PlanPayload, float]] = []
        for lo, hi in ranges:
            fraction = sum(weights[lo:hi]) / total_weight
            parts.append(
                (replace(payload, split=(lo, hi)), max(1.0, total_cost * fraction))
            )
        return parts
