"""Live pool registry: versioned candidate pools under churn.

The paper's platform continuously re-estimates juror error rates from the
microblog stream, so the population a selection query draws from is never
frozen: jurors arrive, leave, and drift.  :class:`CandidatePool` snapshots
are immutable — every churn event would force a full re-sort and ``O(N^2)``
re-sweep.  This module keeps the *update path* cheap without giving up
anything on the *query path*:

:class:`LivePool`
    A mutable candidate pool whose every mutation (``add_juror`` /
    ``remove_juror`` / ``update_juror``) produces a monotonically increasing
    ``version``.  The Lemma 3 ordering is delta-maintained by sorted
    insertion (``O(n)`` per churn event), and the odd-prefix JER profile is
    delta-maintained through a *prefix pmf matrix* with a clean-row
    watermark: a mutation at sorted position ``p`` only dirties prefixes of
    size ``> p``, and the next profile request repairs just those rows with
    :func:`repro.core.jer.resume_prefix_sweep` — reusing every unchanged
    prefix and coalescing the whole churn burst into one partial sweep.
    Past a churn threshold the pool falls back to a full rebuild (the
    watermark drops to zero), which is the same kernel run from row 0.

    Delta-repaired profiles are **bit-identical** to sweeping a fresh
    :class:`CandidatePool` of the same members, so live pools plug into the
    batch engine and its fingerprint-keyed sweep cache without a second code
    path for correctness.  One level up, the pool delta-maintains its
    :class:`~repro.plan.frontier.AnswerFrontier` the same way
    (:meth:`LivePool.answer_frontier`): churn at sorted position ``p``
    invalidates only frontier entries past ``(p + 1) // 2``, and repair
    resumes the running argmin from there.

:class:`PoolRegistry`
    A name -> :class:`LivePool` namespace shared by the batch engine
    (``SelectionQuery(pool_name=...)``), the estimation pipeline
    (:func:`repro.estimation.pipeline.sync_pool_with_estimate`) and the
    ``repro-select serve`` session.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from itertools import count

import numpy as np

from repro.core.jer import resume_prefix_sweep
from repro.core.juror import Juror
from repro.core.selection.base import candidate_key, pool_fingerprint
from repro.errors import EmptyCandidateSetError, InvalidJuryError, PoolNotFoundError
from repro.plan.frontier import AnswerFrontier
from repro.service.pool import CandidatePool

__all__ = ["LivePool", "LivePoolStats", "PoolRegistry"]

#: Fraction of the pool that may churn between profile repairs before the
#: clean-prefix watermark is abandoned and the next repair runs from row 0.
#: Heavy churn tends to touch low sorted positions anyway, so past this point
#: the bookkeeping buys nothing over an honest full rebuild.
DEFAULT_REBUILD_THRESHOLD = 0.5

_pool_uid = count(1)


@dataclass
class LivePoolStats:
    """Counters describing the delta-maintenance work a pool has performed."""

    mutations: int = 0
    repairs: int = 0
    rows_reused: int = 0
    rows_recomputed: int = 0
    full_rebuilds: int = 0
    #: Answer-frontier lifecycle (see :meth:`LivePool.answer_frontier`).
    frontier_builds: int = 0
    frontier_repairs: int = 0
    frontier_rebuilds: int = 0
    frontier_entries_reused: int = 0


class LivePool:
    """A mutable, versioned candidate pool with delta-maintained sweep state.

    Parameters
    ----------
    candidates:
        Initial members.  The initial population counts as version
        ``start_version``, not as one mutation per juror.
    pool_id:
        Human-readable label (e.g. the registry name).
    rebuild_threshold:
        Fraction of the pool size that may mutate between profile repairs
        before delta repair gives way to a full rebuild.
    start_version:
        The version the initial population represents.  ``0`` for a fresh
        pool; the snapshot version when the catalog rebuilds a pool from a
        columnar snapshot, so replayed WAL records line up with the
        versions they were logged under.

    Examples
    --------
    >>> from repro.core.juror import jurors_from_arrays
    >>> pool = LivePool(jurors_from_arrays([0.3, 0.1, 0.2]))
    >>> pool.version, pool.size
    (0, 3)
    >>> pool.add_juror(Juror(0.15, juror_id="new"))
    1
    >>> [j.error_rate for j in pool.ordered]
    [0.1, 0.15, 0.2, 0.3]
    """

    def __init__(
        self,
        candidates: Iterable[Juror] = (),
        *,
        pool_id: str | None = None,
        rebuild_threshold: float = DEFAULT_REBUILD_THRESHOLD,
        start_version: int = 0,
    ) -> None:
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ValueError(
                f"rebuild_threshold must lie in (0, 1], got {rebuild_threshold!r}"
            )
        if start_version < 0:
            raise ValueError(
                f"start_version must be >= 0, got {start_version!r}"
            )
        self.pool_id = pool_id
        self.uid = f"livepool-{next(_pool_uid)}"
        self._rebuild_threshold = rebuild_threshold
        self._members: dict[str, Juror] = {}
        self._ordered: list[Juror] = []  # Lemma 3 order
        self._keys: list[tuple[float, str]] = []  # parallel candidate_key list
        self._version = 0
        self._fingerprint: str | None = None
        self._eps_cache: np.ndarray | None = None
        # Sweep state: row m of ``_matrix`` holds the prefix-m Carelessness
        # pmf in columns 0..m (zeros above); rows 0.._clean are valid.
        self._matrix: np.ndarray | None = None
        self._jers: np.ndarray | None = None
        self._clean = 0
        self._mutations_since_repair = 0
        self._profile: tuple[int, np.ndarray, np.ndarray] | None = None
        # Answer-frontier state: the last frontier materialised for this pool
        # and how many of its leading entries survived the churn since (a
        # mutation at sorted position p leaves prefixes of size <= p — hence
        # the first (p + 1) // 2 frontier entries — intact).
        self._frontier: AnswerFrontier | None = None
        self._frontier_clean = 0
        # Durability hook: when a catalog store is bound, every successful
        # mutation is reported to it (post-bump, so the record carries the
        # new version).  ``None`` keeps the pool purely in-memory.
        self._store = None
        self.stats = LivePoolStats()
        for juror in candidates:
            self._insert(juror)
        self._version = start_version  # initial population is the birth state

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonically increasing state counter; +1 per mutation."""
        return self._version

    @property
    def size(self) -> int:
        """Current number of candidates."""
        return len(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __contains__(self, juror_id: str) -> bool:
        return juror_id in self._members

    def __iter__(self) -> Iterator[Juror]:
        return iter(self._ordered)

    @property
    def ordered(self) -> tuple[Juror, ...]:
        """Members in Lemma 3 (ascending error-rate) order."""
        return tuple(self._ordered)

    def get(self, juror_id: str) -> Juror | None:
        """The member with this id, or ``None``."""
        return self._members.get(juror_id)

    @property
    def error_rates(self) -> np.ndarray:
        """Error-rate vector in sweep order (read-only, cached per version).

        The cache is replaced — never rewritten in place — on mutation, so
        snapshots may adopt the array without copying.
        """
        if self._eps_cache is None:
            eps = np.array([j.error_rate for j in self._ordered], dtype=np.float64)
            eps.flags.writeable = False
            self._eps_cache = eps
        return self._eps_cache

    @property
    def fingerprint(self) -> str:
        """Content hash of the current version (cached until the next mutation).

        Identical members always produce the identical fingerprint, whatever
        mutation path led there — the property the engine's sweep cache
        relies on to restore cache hits after a revert.
        """
        if self._fingerprint is None:
            self._fingerprint = pool_fingerprint(self._ordered)
        return self._fingerprint

    def snapshot(self) -> CandidatePool:
        """Freeze the current version as an immutable :class:`CandidatePool`."""
        if not self._ordered:
            raise EmptyCandidateSetError("cannot snapshot an empty live pool")
        return CandidatePool._from_sorted(
            self._ordered,
            pool_id=self.pool_id,
            fingerprint=self.fingerprint,
            error_rates=self.error_rates,
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_juror(self, juror: Juror) -> int:
        """Add a candidate; returns the new version.  O(n) per call."""
        self._insert(juror)
        version = self._bump()
        if self._store is not None:
            self._store.on_add(self, juror)
        return version

    def remove_juror(self, juror_id: str) -> Juror:
        """Remove a candidate by id and return it.  O(n) per call."""
        juror = self._take(juror_id)
        self._bump()
        if self._store is not None:
            self._store.on_remove(self, juror_id)
        return juror

    def update_juror(
        self,
        juror_id: str,
        *,
        error_rate: float | None = None,
        requirement: float | None = None,
    ) -> int:
        """Re-estimate a member in place; returns the new version.

        Equivalent to remove + re-add of a juror with the same id, but counts
        as a single version bump (one churn event, as produced by a pipeline
        re-estimation).
        """
        current = self._members.get(juror_id)
        if current is None:
            raise InvalidJuryError(f"juror {juror_id!r} is not in the pool")
        replacement = Juror(
            current.error_rate if error_rate is None else error_rate,
            current.requirement if requirement is None else requirement,
            juror_id=juror_id,
        )
        self._take(juror_id)
        self._insert(replacement)
        version = self._bump()
        if self._store is not None:
            self._store.on_update(self, replacement)
        return version

    def update_error_rate(self, juror_id: str, error_rate: float) -> int:
        """Drift a member's error-rate estimate; returns the new version."""
        return self.update_juror(juror_id, error_rate=error_rate)

    def bind_store(self, store) -> None:
        """Attach (or detach, with ``None``) a durable catalog store.

        While bound, every successful mutation is reported to the store
        *after* it is applied in memory, so the WAL only ever records
        mutations the pool accepted.  The catalog binds a store after
        create/recovery and detaches it on eviction and close.
        """
        self._store = store

    # ------------------------------------------------------------------
    # delta-maintained sweep profile
    # ------------------------------------------------------------------
    def sweep_profile(self) -> tuple[np.ndarray, np.ndarray]:
        """Odd-prefix JER profile ``(ns, jers)`` of the current version.

        Dirty prefix rows (everything at or above the lowest churned sorted
        position since the last repair) are recomputed with
        :func:`repro.core.jer.resume_prefix_sweep`; clean rows are reused.
        The arrays are read-only and stable for this version — repeated
        calls at the same version return the cached pair.
        """
        n = len(self._ordered)
        if n == 0:
            raise EmptyCandidateSetError("cannot sweep an empty live pool")
        if self._profile is not None and self._profile[0] == self._version:
            return self._profile[1], self._profile[2]

        if self._mutations_since_repair > max(
            8.0, self._rebuild_threshold * n
        ):
            self._clean = 0
            self.stats.full_rebuilds += 1
        self._ensure_capacity(n + 1)
        assert self._matrix is not None and self._jers is not None
        start = min(self._clean, n)
        resume_prefix_sweep(self.error_rates, self._matrix, self._jers, start=start)
        self.stats.repairs += 1
        self.stats.rows_reused += start
        self.stats.rows_recomputed += n - start
        self._clean = n
        self._mutations_since_repair = 0

        ns = np.arange(1, n + 1, 2, dtype=np.int64)
        jers = self._jers[: ns.size].copy()
        ns.flags.writeable = False
        jers.flags.writeable = False
        self._profile = (self._version, ns, jers)
        return ns, jers

    def answer_frontier(self) -> tuple[AnswerFrontier, str]:
        """The answer frontier of the current version, delta-repaired.

        Returns ``(frontier, mode)`` where ``mode`` records how this
        version's frontier was produced: ``"cached"`` (version unchanged
        since the last call), ``"built"`` (first materialisation),
        ``"repaired"`` (running argmin resumed past the surviving clean
        prefix) or ``"rebuilt"`` (churn invalidated every entry; same
        kernel run from entry 0).  The frontier's probes are bit-identical
        to :func:`repro.core.jer.best_odd_prefix` over
        :meth:`sweep_profile` — the delta repair reuses only entries the
        churn provably left untouched.
        """
        ns, jers = self.sweep_profile()
        frontier = self._frontier
        if frontier is not None and frontier.version == self._version:
            return frontier, "cached"
        clean = (
            0
            if frontier is None
            else max(0, min(self._frontier_clean, frontier.entries, int(ns.size)))
        )
        if frontier is None:
            rebuilt = AnswerFrontier.build(
                ns, jers, fingerprint=self.fingerprint, version=self._version
            )
            self.stats.frontier_builds += 1
            mode = "built"
        elif clean == 0:
            rebuilt = AnswerFrontier.build(
                ns, jers, fingerprint=self.fingerprint, version=self._version
            )
            self.stats.frontier_rebuilds += 1
            mode = "rebuilt"
        else:
            rebuilt = frontier.repaired(
                ns, jers, clean, fingerprint=self.fingerprint, version=self._version
            )
            self.stats.frontier_repairs += 1
            self.stats.frontier_entries_reused += clean
            mode = "repaired"
        self._frontier = rebuilt
        self._frontier_clean = rebuilt.entries
        return rebuilt, mode

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _insert(self, juror: Juror) -> None:
        if not isinstance(juror, Juror):
            raise InvalidJuryError("only Juror instances can join a pool")
        if juror.juror_id in self._members:
            raise InvalidJuryError(
                f"juror {juror.juror_id!r} is already in the pool"
            )
        key = candidate_key(juror)
        position = bisect_left(self._keys, key)
        self._keys.insert(position, key)
        self._ordered.insert(position, juror)
        self._members[juror.juror_id] = juror
        self._clean = min(self._clean, position)
        self._frontier_clean = min(self._frontier_clean, (position + 1) // 2)
        self._eps_cache = None

    def _take(self, juror_id: str) -> Juror:
        juror = self._members.get(juror_id)
        if juror is None:
            raise InvalidJuryError(f"juror {juror_id!r} is not in the pool")
        position = bisect_left(self._keys, candidate_key(juror))
        del self._keys[position]
        del self._ordered[position]
        del self._members[juror_id]
        self._clean = min(self._clean, position)
        self._frontier_clean = min(self._frontier_clean, (position + 1) // 2)
        self._eps_cache = None
        return juror

    def _bump(self) -> int:
        self._version += 1
        self._fingerprint = None
        self._mutations_since_repair += 1
        self.stats.mutations += 1
        return self._version

    def _ensure_capacity(self, rows: int) -> None:
        if self._matrix is not None and self._matrix.shape[0] >= rows:
            return
        capacity = max(rows, 8)
        if self._matrix is not None:
            capacity = max(capacity, 2 * self._matrix.shape[0])
        matrix = np.zeros((capacity, capacity), dtype=np.float64)
        jers = np.zeros((capacity + 1) // 2, dtype=np.float64)
        if self._matrix is not None and self._clean > 0:
            keep = self._clean + 1
            old = self._matrix.shape[1]
            matrix[:keep, :old] = self._matrix[:keep]
            jers[: (self._clean + 1) // 2] = self._jers[: (self._clean + 1) // 2]
        self._matrix = matrix
        self._jers = jers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" id={self.pool_id!r}" if self.pool_id else ""
        return f"LivePool(size={self.size}, version={self._version}{label})"


class PoolRegistry:
    """Named :class:`LivePool` namespace for the service layer.

    By default the namespace is purely in-memory.  Constructed with a
    :class:`repro.storage.PoolCatalog`, every operation delegates to the
    catalog instead: creates and mutations are WAL-logged, lookups lazily
    load (and crash-recover) pools from disk, and ``names()`` spans the
    whole durable namespace — including pools not currently resident.

    Examples
    --------
    >>> from repro.core.juror import jurors_from_arrays
    >>> registry = PoolRegistry()
    >>> pool = registry.create("P1", jurors_from_arrays([0.1, 0.2, 0.3]))
    >>> registry.get("P1") is pool
    True
    """

    def __init__(self, *, catalog=None) -> None:
        self._pools: dict[str, LivePool] = {}
        self._catalog = catalog

    @property
    def catalog(self):
        """The bound :class:`~repro.storage.PoolCatalog`, or ``None``."""
        return self._catalog

    def create(
        self,
        name: str,
        candidates: Iterable[Juror] = (),
        *,
        replace: bool = False,
    ) -> LivePool:
        """Register a new live pool under ``name``.

        With ``replace=False`` (default) an existing name raises; with
        ``replace=True`` the previous pool is dropped first, and the new pool
        starts at version 0.
        """
        if self._catalog is not None:
            return self._catalog.create(name, candidates, replace=replace)
        if not isinstance(name, str) or not name:
            raise ValueError(f"pool name must be a non-empty string, got {name!r}")
        if name in self._pools and not replace:
            raise InvalidJuryError(f"pool {name!r} already exists in the registry")
        pool = LivePool(candidates, pool_id=name)
        self._pools[name] = pool
        return pool

    def get(self, name: str) -> LivePool:
        """The pool registered under ``name``; raises :class:`PoolNotFoundError`.

        Catalog-backed registries load the pool from disk on first access
        (snapshot + WAL replay); the returned object is the same live pool
        for every call while it stays resident.
        """
        if self._catalog is not None:
            return self._catalog.open(name)
        try:
            return self._pools[name]
        except KeyError:
            raise PoolNotFoundError(
                f"no pool named {name!r} in the registry"
            ) from None

    def drop(self, name: str) -> LivePool:
        """Unregister and return the pool under ``name``.

        Catalog-backed registries tombstone the pool durably: a fsynced
        ``drop`` record lands in the WAL before any file is reclaimed, so
        the drop survives a crash and a restart cannot resurrect the pool.
        """
        if self._catalog is not None:
            pool = self._catalog.open(name)
            self._catalog.drop(name)
            return pool
        pool = self.get(name)
        del self._pools[name]
        return pool

    def names(self) -> tuple[str, ...]:
        """Registered pool names — the full durable namespace when
        catalog-backed (resident and cold alike), creation order otherwise."""
        if self._catalog is not None:
            return self._catalog.names()
        return tuple(self._pools)

    def resident_pools(self) -> list[tuple[str, LivePool]]:
        """The ``(name, pool)`` pairs currently held in memory.

        For an in-memory registry this is everything; for a catalog-backed
        one it is the LRU-resident subset — the set ``stats()`` reports on
        without forcing thousands of cold pools off disk.
        """
        if self._catalog is not None:
            return self._catalog.resident_items()
        return list(self._pools.items())

    def __contains__(self, name: str) -> bool:
        if self._catalog is not None:
            return name in self._catalog
        return name in self._pools

    def __len__(self) -> int:
        if self._catalog is not None:
            return len(self._catalog)
        return len(self._pools)

    def __iter__(self) -> Iterator[LivePool]:
        """Iterate the pools held in memory (resident subset if durable)."""
        if self._catalog is not None:
            return iter(pool for _, pool in self._catalog.resident_items())
        return iter(self._pools.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._catalog is not None:
            return f"PoolRegistry(catalog={self._catalog!r})"
        return f"PoolRegistry(pools={list(self._pools)})"
