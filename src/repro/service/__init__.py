"""Batch selection service: answer many jury-selection queries at once.

The paper's single-query algorithms answer *one* "whom to ask?" question; a
crowdsourcing platform asks thousands concurrently.  This package
restructures the execution path for that workload shape:

:class:`BatchSelectionEngine`
    Accepts a batch of :class:`SelectionQuery` objects (mixed AltrM / PayM /
    exact, shared or per-task candidate pools) and executes them through
    vectorized kernels, a per-pool prefix-sweep cache, and an optional
    process pool for exact solves.
:class:`CandidatePool`
    An immutable, fingerprinted candidate set shareable across queries.
:class:`PrefixSweepCache`
    The LRU cache of odd-prefix JER profiles keyed on pool fingerprints.

The single-query selectors (:func:`repro.select_jury_altr`,
:func:`repro.select_jury_pay`) are thin wrappers over this engine with a
batch of one, so batched and scalar selection are bit-identical by
construction.  The ``repro-select batch`` CLI subcommand exposes the engine
over JSONL; ``benchmarks/bench_batch.py`` measures its throughput.
"""

from repro.service.batch import BatchSelectionEngine, QueryOutcome, SelectionQuery
from repro.service.cache import PrefixSweepCache
from repro.service.pool import CandidatePool, as_pool

__all__ = [
    "BatchSelectionEngine",
    "SelectionQuery",
    "QueryOutcome",
    "CandidatePool",
    "PrefixSweepCache",
    "as_pool",
]
