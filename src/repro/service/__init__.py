"""Batch selection service: answer many jury-selection queries at once.

The paper's single-query algorithms answer *one* "whom to ask?" question; a
crowdsourcing platform asks thousands concurrently.  This package
restructures the execution path for that workload shape:

:class:`BatchSelectionEngine`
    Accepts a batch of :class:`SelectionQuery` objects (mixed AltrM / PayM /
    exact, shared or per-task candidate pools) and executes them through
    vectorized kernels and a per-pool prefix-sweep cache — in-process, or
    fanned out across worker shards via a :class:`ShardedExecutor`.
:class:`ShardedExecutor`
    Multi-process execution strategy: queries are planned in the parent and
    executed across ``N`` worker processes, each with a worker-local sweep
    cache (:mod:`repro.service.shard`).
:class:`WorkScheduler`
    The scheduling policy layer (:mod:`repro.service.sched`): ``cost``
    bin-packs planned payloads across shards by planner cost estimates —
    splitting heavy exact enumerations into candidate-range sub-payloads
    and letting idle shards steal queued work — while ``hash`` reproduces
    the static fingerprint partitioning.  Selections are bit-identical
    under every policy.
:class:`CandidatePool`
    An immutable, fingerprinted candidate set shareable across queries.
:class:`LivePool` / :class:`PoolRegistry`
    Mutable, versioned candidate pools whose Lemma 3 ordering and prefix-JER
    sweep profiles are delta-maintained under juror churn
    (:mod:`repro.service.registry`); ``SelectionQuery(pool_name=...)``
    resolves against an engine's registry.
:class:`PrefixSweepCache`
    The LRU cache of odd-prefix JER profiles keyed on pool fingerprints.
    Content keying makes it churn-safe: a live-pool mutation changes the
    fingerprint (stale profiles cannot be served), and reverting the
    membership restores the old fingerprint's hits.

The single-query selectors (:func:`repro.select_jury_altr`,
:func:`repro.select_jury_pay`) are thin wrappers over this engine with a
batch of one, so batched and scalar selection are bit-identical by
construction.  The ``repro-select batch`` CLI subcommand exposes the engine
over JSONL and ``repro-select serve`` keeps a registry-backed session alive
across interleaved pool mutations and selections;
``benchmarks/bench_batch.py`` and ``benchmarks/bench_live_churn.py`` measure
throughput and churn behaviour.
"""

from repro.service.batch import BatchSelectionEngine, QueryOutcome, SelectionQuery
from repro.service.cache import PrefixSweepCache
from repro.service.pool import CandidatePool, as_pool
from repro.service.registry import LivePool, LivePoolStats, PoolRegistry
from repro.service.sched import SCHEDULER_POLICIES, WorkScheduler
from repro.service.shard import ShardedExecutor

__all__ = [
    "BatchSelectionEngine",
    "SelectionQuery",
    "QueryOutcome",
    "CandidatePool",
    "LivePool",
    "LivePoolStats",
    "PoolRegistry",
    "PrefixSweepCache",
    "SCHEDULER_POLICIES",
    "ShardedExecutor",
    "WorkScheduler",
    "as_pool",
]
