"""Immutable, fingerprinted candidate pools for the batch engine.

A :class:`CandidatePool` normalises a candidate set once — sorting into the
Lemma 3 (ascending error-rate) order, caching the error-rate vector, and
computing a content fingerprint — so that the work can be shared by every
query that targets the same pool.  The fingerprint is what the prefix-sweep
cache (:mod:`repro.service.cache`) is keyed on.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.juror import Juror, ensure_unique_ids
from repro.core.selection.base import pool_fingerprint, sorted_candidates
from repro.errors import EmptyCandidateSetError, InvalidJuryError

__all__ = ["CandidatePool", "as_pool"]


class CandidatePool:
    """A reusable candidate set shared by one or many selection queries.

    Parameters
    ----------
    candidates:
        The candidate jurors.  They are re-sorted into the deterministic
        Lemma 3 ordering (error rate ascending, id tie-break), so two pools
        with the same members in different input orders are identical —
        same fingerprint, same sweep, same selections.
    pool_id:
        Optional human-readable label (e.g. the JSONL pool name); purely
        cosmetic, not part of the fingerprint.

    Examples
    --------
    >>> from repro.core.juror import jurors_from_arrays
    >>> pool = CandidatePool(jurors_from_arrays([0.3, 0.1, 0.2]))
    >>> pool.error_rates.tolist()
    [0.1, 0.2, 0.3]
    """

    __slots__ = ("_ordered", "_eps", "_fingerprint", "_view", "pool_id")

    def __init__(
        self, candidates: Iterable[Juror], *, pool_id: str | None = None
    ) -> None:
        members = tuple(candidates)
        if not members:
            raise EmptyCandidateSetError("a candidate pool must not be empty")
        if not all(isinstance(j, Juror) for j in members):
            raise InvalidJuryError("all pool members must be Juror instances")
        ensure_unique_ids(members, where="candidate pool")
        ordered = tuple(sorted_candidates(members))
        self._ordered: tuple[Juror, ...] = ordered
        self._eps = np.array([j.error_rate for j in ordered], dtype=np.float64)
        # Computed lazily: only the AltrM sweep cache consults it, so PayM /
        # exact / single-query paths never pay for the hash.
        self._fingerprint: str | None = None
        self._view = None
        self.pool_id = pool_id

    @classmethod
    def _from_sorted(
        cls,
        ordered: Iterable[Juror],
        *,
        pool_id: str | None = None,
        fingerprint: str | None = None,
        error_rates: np.ndarray | None = None,
    ) -> "CandidatePool":
        """Internal fast path: build a pool from already-validated members.

        Used by :class:`repro.service.registry.LivePool` snapshots, which
        maintain the Lemma 3 ordering and unique-id invariant themselves and
        may already know the content fingerprint *and* the sorted error-rate
        vector — pass ``error_rates`` to reuse it instead of recomputing it
        from the :class:`Juror` objects.  The array is adopted as-is, so it
        must be parallel to ``ordered`` and never mutated by the caller
        (live pools replace, rather than rewrite, their cached vector).
        """
        pool = object.__new__(cls)
        pool._ordered = tuple(ordered)
        pool._eps = (
            np.array([j.error_rate for j in pool._ordered], dtype=np.float64)
            if error_rates is None
            else np.asarray(error_rates, dtype=np.float64)
        )
        pool._fingerprint = fingerprint
        pool._view = None
        pool.pool_id = pool_id
        return pool

    # ------------------------------------------------------------------
    @property
    def ordered(self) -> tuple[Juror, ...]:
        """Members in Lemma 3 (ascending error-rate) order."""
        return self._ordered

    @property
    def error_rates(self) -> np.ndarray:
        """Error-rate vector in sweep order (read-only view)."""
        view = self._eps.view()
        view.flags.writeable = False
        return view

    @property
    def size(self) -> int:
        """Number of candidates ``N``."""
        return len(self._ordered)

    @property
    def fingerprint(self) -> str:
        """Content hash identifying this pool for caching purposes."""
        if self._fingerprint is None:
            self._fingerprint = pool_fingerprint(self._ordered)
        return self._fingerprint

    @property
    def view(self):
        """Columnar :class:`~repro.plan.view.PoolView` over this pool.

        Shares the pool's sorted member tuple and cached error-rate vector,
        so planning a query against a pool adds no re-sort or re-hash; the
        view is built once and reused by every plan that targets the pool.
        """
        if self._view is None:
            # Local import: repro.plan imports the selection layer, which
            # must stay importable without the service package.
            from repro.plan.view import PoolView

            self._view = PoolView.from_sorted(
                self._ordered,
                error_rates=self._eps,
                fingerprint=self._fingerprint,
                pool_id=self.pool_id,
            )
        return self._view

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ordered)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CandidatePool):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" id={self.pool_id!r}" if self.pool_id else ""
        return f"CandidatePool(size={self.size}{label}, fp={self.fingerprint[:8]})"


def as_pool(
    candidates: "CandidatePool | Sequence[Juror]", *, pool_id: str | None = None
) -> CandidatePool:
    """Coerce a candidate sequence (or pass through a pool) to a pool."""
    if isinstance(candidates, CandidatePool):
        return candidates
    return CandidatePool(candidates, pool_id=pool_id)
