"""LRU cache of prefix-JER sweep profiles, keyed on pool fingerprints.

The expensive part of an AltrM selection is the ``O(N^2)`` prefix sweep; the
answer to *any* altruistic query over a pool (for any ``max_size``) can be
read off the pool's odd-prefix JER profile.  The batch engine therefore
caches one profile per pool fingerprint: queries arriving later — in the
same batch or a later one — reuse it for free.

Fingerprints are *content* hashes, which is what makes the cache safe under
live pools (:mod:`repro.service.registry`): a :class:`LivePool` mutation
bumps the pool's version and changes its fingerprint, so a stale profile can
never be served for the new state — and a mutation sequence that restores
the previous membership restores the previous fingerprint, so earlier cache
entries become hits again.  :meth:`PrefixSweepCache.invalidate` additionally
supports explicit eviction (e.g. when a registry pool is dropped).

Profiles are stored as ``(ns, jers)`` float64 arrays (a few KiB per pool) and
evicted least-recently-used beyond ``maxsize``.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["PrefixSweepCache"]

#: Default number of pool profiles retained by an engine's cache.
DEFAULT_CACHE_SIZE = 128


class PrefixSweepCache:
    """Least-recently-used cache ``fingerprint -> (ns, jers)`` profile.

    Parameters
    ----------
    maxsize:
        Maximum number of profiles retained.  ``0`` disables storage
        entirely (every :meth:`get` misses), which the single-query wrapper
        uses so that repeated one-off calls do not accumulate hidden state.

    Examples
    --------
    >>> cache = PrefixSweepCache(maxsize=2)
    >>> import numpy as np
    >>> cache.put("fp1", np.array([1, 3]), np.array([0.1, 0.07]))
    >>> cache.get("fp1")[0].tolist()
    [1, 3]
    >>> cache.hits, cache.misses
    (1, 0)
    """

    __slots__ = ("_maxsize", "_entries", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self._maxsize = maxsize
        self._entries: OrderedDict[str, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def maxsize(self) -> int:
        """Capacity in profiles."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> tuple[np.ndarray, np.ndarray] | None:
        """Return the cached ``(ns, jers)`` profile, or ``None`` on a miss."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return entry

    def put(self, fingerprint: str, ns: np.ndarray, jers: np.ndarray) -> None:
        """Store a profile, evicting the least recently used beyond capacity."""
        if self._maxsize == 0:
            return
        self._entries[fingerprint] = (ns, jers)
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, fingerprint: str) -> bool:
        """Explicitly evict one profile; returns whether it was present.

        Content-keyed entries never go *wrong*, but entries for dropped
        registry pools are dead weight — this frees them without waiting for
        LRU pressure.
        """
        if self._entries.pop(fingerprint, None) is None:
            return False
        self.evictions += 1
        return True

    def clear(self) -> None:
        """Drop all cached profiles and reset the hit/miss/eviction counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
