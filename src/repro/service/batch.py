"""Batch jury-selection engine.

The paper's workload is inherently batched: a crowdsourcing platform must
select juries for thousands of concurrent decision tasks, frequently drawing
on the same candidate pool.  :class:`BatchSelectionEngine` accepts many
:class:`SelectionQuery` objects at once — mixed AltrM / PayM / exact
strategies, shared or per-task pools.

Every query is answered through the plan layer: the engine resolves the
candidate source to a pool, calls :func:`repro.plan.plan_query` (the single
front door that parses model strings and picks the physical operator) and
executes the plan with :func:`repro.plan.execute_plan`.  On top of that one
path the engine adds the batch-shaped optimisations:

* **Repeat AltrM queries** are answered from the answer-frontier cache
  (:mod:`repro.plan.frontier`): the engine probes it during batch assembly,
  *before* planning, and a hit is one ``np.searchsorted`` — no
  ``plan_query``, no ``execute_plan``, and under sharded execution no
  worker round trip (hits shrink the shard payloads).  Frontiers are
  materialised the first time a pool's profile is resolved and delta-
  repaired by live pools across churn; results are bit-identical to the
  plan pipeline, tie-break included.
* **AltrM queries** are answered from odd-prefix JER profiles.  Distinct
  pools of equal size are stacked into one matrix and swept together by the
  vectorized 2-D kernel (:func:`repro.core.jer.batch_prefix_jer_sweep`);
  profiles are cached per pool fingerprint (:class:`PrefixSweepCache`), so a
  pool shared by 1,000 tasks is swept exactly once, and the cached profile
  is handed to the plan's sweep operator.
* **PayM queries** execute the columnar greedy operator per query (the
  greedy is inherently sequential per instance, but its pair trials are
  scored block-wise — see :mod:`repro.core.selection.pay`).
* **Exact queries** execute the enumeration / branch-and-bound operator the
  cost model picks.

Execution strategy: with ``executor=None`` (and ``max_workers`` unset or
``<= 1``) everything above runs in-process.  With a
:class:`~repro.service.shard.ShardedExecutor` (or ``max_workers > 1``, which
builds one), *all* models are fanned out across worker processes partitioned
by pool fingerprint: the parent still resolves pools and plans every query —
so the deterministic operator choice stays centralised — and ships columnar
:class:`~repro.service.shard.PlanPayload` objects to the shards, each of
which keeps a worker-local sweep cache.  This replaces the PR 1 ad-hoc
process pool that covered exact queries only.

Results are **bit-identical** to the single-query selectors in every mode —
sequential, sharded, and the degraded in-process fallback all run the same
plan->operator pipeline over the same columnar arrays, so they cannot
diverge.  :meth:`BatchSelectionEngine.plan` returns the plan for a query
*without* executing it (the ``repro-select explain`` surface).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, replace

import numpy as np

from repro._validation import validate_budget
from repro.core import kernels
from repro.core.jer import batch_prefix_jer_sweep
from repro.core.juror import Juror
from repro.core.selection.base import SelectionResult
from repro.plan import SelectionPlan, execute_plan, normalize_model, plan_query
from repro.plan.cost import frontier_eligible, plan_cost
from repro.plan.frontier import (
    AnswerFrontier,
    FrontierCache,
    frontier_cache_size_from_env,
)
from repro.service.cache import DEFAULT_CACHE_SIZE, PrefixSweepCache
from repro.service.pool import CandidatePool
from repro.service.registry import LivePool, PoolRegistry
from repro.service.sched import WorkScheduler
from repro.service.shard import (
    PlanPayload,
    PoolColumns,
    ShardedExecutor,
    merge_split_answers,
    rebuild_result,
)

__all__ = ["SelectionQuery", "QueryOutcome", "BatchSelectionEngine"]


@dataclass(frozen=True)
class SelectionQuery:
    """One jury-selection request inside a batch.

    Parameters
    ----------
    task_id:
        Caller-chosen identifier echoed back on the outcome.
    candidates:
        Inline candidate jurors; mutually exclusive with ``pool`` and
        ``pool_name``.
    pool:
        A shared :class:`CandidatePool`.  Queries referencing the same pool
        object (or pools with equal fingerprints) share one prefix sweep.
    pool_name:
        Name of a :class:`~repro.service.registry.LivePool` in the engine's
        registry.  The query runs against a snapshot of the pool's state at
        resolution time; its delta-maintained sweep profile is reused on
        cache misses.
    model:
        ``"altr"`` (AltrALG optimum), ``"pay"`` (PayALG greedy, requires
        ``budget``) or ``"exact"`` (enumeration / branch-and-bound optimum).
    budget:
        PayM budget; required for ``"pay"``, optional for ``"exact"``.
    max_size:
        Optional cap on the jury size (``"altr"`` / ``"exact"``).
    variant:
        PayALG variant: ``"paper"`` or ``"improved"``.
    method:
        Exact-solver method: ``"auto"``, ``"enumerate"`` or
        ``"branch-and-bound"``.
    """

    task_id: str
    candidates: tuple[Juror, ...] | None = None
    pool: CandidatePool | None = None
    pool_name: str | None = None
    model: str = "altr"
    budget: float | None = None
    max_size: int | None = None
    variant: str = "paper"
    method: str = "auto"

    def __post_init__(self) -> None:
        # The plan layer owns model-string parsing; canonicalise once here
        # so every downstream comparison sees "altr"/"pay"/"exact".
        object.__setattr__(self, "model", normalize_model(self.model))
        sources = sum(
            source is not None
            for source in (self.candidates, self.pool, self.pool_name)
        )
        if sources != 1:
            raise ValueError(
                "exactly one of 'candidates', 'pool' and 'pool_name' must be "
                "provided"
            )
        if self.model == "pay" and self.budget is None:
            raise ValueError("model 'pay' requires a budget")

    def resolve_pool(self) -> CandidatePool:
        """The pool this query selects from (building one for inline candidates).

        ``pool_name`` queries cannot be resolved without a registry; the
        engine resolves those itself.
        """
        if self.pool_name is not None:
            raise ValueError(
                f"query {self.task_id!r} references registry pool "
                f"{self.pool_name!r}; run it through an engine with a registry"
            )
        if self.pool is not None:
            return self.pool
        return CandidatePool(self.candidates)


@dataclass
class QueryOutcome:
    """Result slot for one query of a batch: either a result or an error.

    ``exception`` carries the failure itself — raised in-process or inside a
    worker shard, it crosses the boundary intact — so transports report a
    structured code + message (see :attr:`error_info`) instead of parsing
    strings.  (The legacy flat ``.error`` message string was removed after
    its one-release deprecation window; read ``error_info.message``.)
    """

    task_id: str
    result: SelectionResult | None = None
    elapsed_seconds: float = 0.0
    exception: BaseException | None = None

    @property
    def ok(self) -> bool:
        """True when the query produced a selection."""
        return self.result is not None

    @property
    def error_info(self):
        """Structured :class:`~repro.api.ErrorInfo` for the failure, if any.

        Built lazily from :attr:`exception`, so the engine itself never
        depends on the protocol layer.
        """
        if self.ok:
            return None
        # Local import: repro.api sits above the service layer.
        from repro.api.protocol import ErrorInfo

        if self.exception is not None:
            return ErrorInfo.from_exception(self.exception)
        return ErrorInfo(code="internal", message="query produced no result")


@dataclass
class EngineStats:
    """Counters describing the work an engine has performed (cumulative)."""

    queries_run: int = 0
    batch_sweeps: int = 0
    pools_swept: int = 0
    live_profiles: int = 0
    #: Queries answered by worker shards (sharded execution only).
    sharded_queries: int = 0
    #: Shard batches dispatched (one per shard touched per engine pass).
    shard_batches: int = 0
    #: Queries answered from the answer frontier — no plan, no kernel, and
    #: (under sharded execution) no worker round trip.
    frontier_hits: int = 0
    #: Compiled-kernel backend large kernel calls dispatch to
    #: (``numpy``/``numba``/``native``) — resolved and warmed at engine
    #: construction so JIT/cc compile time never lands in query timings.
    kernel_backend: str = "numpy"
    #: Shard scheduling policy in force (``cost`` or ``hash``); selections
    #: are bit-identical under both, only placement/timing differ.
    scheduler_policy: str = "cost"
    #: Heavy exact-enumeration queries split into candidate-range
    #: sub-payloads across shards (cost policy, sharded execution only).
    split_queries: int = 0
    #: Work units executed by a shard other than the one they were packed
    #: onto (idle-shard stealing; cost policy only).
    stolen_units: int = 0


class BatchSelectionEngine:
    """Execute many jury-selection queries through shared, vectorized kernels.

    Parameters
    ----------
    cache_size:
        Capacity of the per-engine prefix-sweep cache (profiles retained
        across :meth:`run` calls).  ``0`` disables cross-run caching;
        within one batch, pools are still deduplicated by fingerprint.
        Under sharded execution the engine cache relays live-pool profiles;
        cold sweeps live in the worker-local caches instead.
    frontier_size:
        Capacity of the answer-frontier cache
        (:class:`~repro.plan.frontier.FrontierCache`): one materialised
        budget→jury frontier per pool fingerprint, probed *before* planning
        so repeat AltrM queries are answered by binary search — no
        ``plan_query``, no ``execute_plan``, and under sharded execution no
        worker round trip.  ``0`` disables it (the oracle configuration);
        ``None`` (default) defers to the ``REPRO_FRONTIER_CACHE``
        environment flag (enabled unless the flag is falsy).
    max_workers:
        Convenience: ``> 1`` builds a
        :class:`~repro.service.shard.ShardedExecutor` with that many worker
        shards (mutually exclusive with ``executor``).
    executor:
        Execution strategy.  ``None`` runs everything in-process; a
        :class:`~repro.service.shard.ShardedExecutor` fans every model out
        across fingerprint-partitioned worker processes.
    registry:
        Optional :class:`~repro.service.registry.PoolRegistry` against which
        ``pool_name`` queries are resolved.  Live pools contribute their
        delta-maintained sweep profiles on cache misses, so a churned pool
        costs one partial repair instead of a full engine-side sweep.
    scheduler:
        Shard scheduling policy: ``"cost"`` (planner-costed bin-packing
        with query splitting and stealing), ``"hash"`` (static fingerprint
        hashing, the oracle path), or ``None`` (default) to defer to the
        ``REPRO_SCHEDULER`` environment variable (default ``cost``).
        Selections are bit-identical under every policy; only placement and
        timing differ.  Ignored without an executor, except that the
        sequential path still reports its policy and single-slot
        utilisation through :meth:`scheduler_stats`.

    Examples
    --------
    >>> from repro.core.juror import jurors_from_arrays
    >>> engine = BatchSelectionEngine()
    >>> cands = tuple(jurors_from_arrays([0.1, 0.2, 0.2, 0.3, 0.3]))
    >>> out = engine.run([SelectionQuery(task_id="t1", candidates=cands)])
    >>> out[0].result.size, round(out[0].result.jer, 4)
    (5, 0.0704)
    """

    def __init__(
        self,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        frontier_size: int | None = None,
        max_workers: int | None = None,
        executor: ShardedExecutor | None = None,
        registry: PoolRegistry | None = None,
        scheduler: str | None = None,
    ) -> None:
        if executor is not None and max_workers is not None:
            raise ValueError("pass either an executor or max_workers, not both")
        if executor is None and max_workers is not None and max_workers > 1:
            executor = ShardedExecutor(max_workers)
        self._sched = WorkScheduler(scheduler)
        # Sequential-path bookkeeping mirroring the per-shard counters, so
        # scheduler_stats() is meaningful with and without an executor.
        self._seq_assigned_cost = 0.0
        self._seq_busy_seconds = 0.0
        self._cache = PrefixSweepCache(maxsize=cache_size)
        if frontier_size is None:
            frontier_size = frontier_cache_size_from_env()
        self._frontier = FrontierCache(maxsize=frontier_size)
        self._executor = executor
        self._registry = registry
        # Guards parent-side shared state (cache, stats, planning) when the
        # async drainer fans concurrent select_many calls across shards; the
        # lock is released while waiting on shard futures, so parent-side
        # work overlaps with worker compute.
        self._lock = threading.Lock()
        # Activate (compile + bitwise-verify + warm) the configured kernel
        # backend up front: queries must never pay first-call compile cost,
        # and stats report the backend before the first query runs.
        self.stats = EngineStats(
            kernel_backend=kernels.ensure_ready(),
            scheduler_policy=self._sched.policy,
        )

    @property
    def cache(self) -> PrefixSweepCache:
        """The engine's prefix-sweep cache (inspectable in tests/ops)."""
        return self._cache

    @property
    def frontier(self) -> FrontierCache:
        """The engine's answer-frontier cache (inspectable in tests/ops)."""
        return self._frontier

    @property
    def executor(self) -> ShardedExecutor | None:
        """The sharded execution strategy, if any."""
        return self._executor

    @property
    def registry(self) -> PoolRegistry | None:
        """The registry ``pool_name`` queries resolve against (if any)."""
        return self._registry

    @property
    def scheduler_policy(self) -> str:
        """The shard scheduling policy in force (``cost`` or ``hash``)."""
        return self._sched.policy

    def scheduler_stats(self) -> dict:
        """The scheduler's view of realized load balance.

        Returns the policy, per-shard placement counters (assigned
        scheduling cost, realized busy seconds, steals, split sub-payloads,
        queue depth high-water), the split/steal totals, and
        ``assigned_cost_skew`` — max/mean per-shard assigned cost, the
        number the cost policy exists to keep near 1.0 where hashing
        skews.  Without an executor the sequential path reports one
        virtual slot, so the block is always present and comparable.
        """
        if self._executor is not None:
            keys = (
                "shard",
                "assigned_cost",
                "busy_seconds",
                "stolen",
                "split_payloads",
                "queue_depth",
            )
            per_shard = [
                {key: slot[key] for key in keys}
                for slot in self._executor.utilisation()
            ]
        else:
            with self._lock:
                per_shard = [
                    {
                        "shard": 0,
                        "assigned_cost": self._seq_assigned_cost,
                        "busy_seconds": self._seq_busy_seconds,
                        "stolen": 0,
                        "split_payloads": 0,
                        "queue_depth": 0,
                    }
                ]
        costs = [slot["assigned_cost"] for slot in per_shard]
        mean = sum(costs) / len(costs) if costs else 0.0
        skew = max(costs) / mean if mean > 0 else 1.0
        return {
            "policy": self._sched.policy,
            "workers": len(per_shard),
            "splits": self.stats.split_queries,
            "steals": sum(slot["stolen"] for slot in per_shard),
            "assigned_cost_skew": skew,
            "per_shard": per_shard,
        }

    def invalidate_profile(self, fingerprint: str) -> None:
        """Evict a pool's cached answers everywhere they may live.

        Symmetric by construction: *every* parent-side structure keyed by
        this fingerprint — the prefix-sweep cache and the answer-frontier
        cache — is cleared, and under sharded execution the eviction is
        broadcast to every worker-local cache, so dropping a registry pool
        frees its state in all shards, not just the parent.
        """
        self._cache.invalidate(fingerprint)
        self._frontier.invalidate(fingerprint)
        if self._executor is not None:
            self._executor.invalidate(fingerprint)

    def close(self) -> None:
        """Release the executor's dedicated worker processes, if any."""
        if self._executor is not None:
            self._executor.close()

    def _resolve(self, query: SelectionQuery) -> tuple[CandidatePool, LivePool | None]:
        """Resolve a query to a frozen pool (plus its live pool, if any)."""
        if query.pool_name is None:
            return query.resolve_pool(), None
        if self._registry is None:
            raise ValueError(
                f"query {query.task_id!r} references registry pool "
                f"{query.pool_name!r} but the engine has no registry"
            )
        live = self._registry.get(query.pool_name)
        return live.snapshot(), live

    @staticmethod
    def _plan_for(query: SelectionQuery, pool: CandidatePool) -> SelectionPlan:
        """Plan one resolved query (the single front door for every model)."""
        return plan_query(
            pool=pool,
            model=query.model,
            budget=query.budget,
            max_size=query.max_size,
            variant=query.variant,
            method=query.method,
            task_id=query.task_id,
        )

    def plan(self, query: SelectionQuery) -> SelectionPlan:
        """Resolve and plan a query *without* executing it.

        This is the EXPLAIN surface: the returned
        :class:`~repro.plan.SelectionPlan` carries the chosen physical
        operator, the numeric backends, and the cost-model inputs; render it
        with :meth:`~repro.plan.SelectionPlan.describe`.
        """
        pool, _ = self._resolve(query)
        return self._plan_for(query, pool)

    # ------------------------------------------------------------------
    def select(self, query: SelectionQuery) -> SelectionResult:
        """Run a single query, raising on failure (library-style API).

        The result's ``stats.elapsed_seconds`` covers the whole engine pass,
        matching what the scalar selectors historically reported.
        """
        start = time.perf_counter()
        outcome = self.run([query], raise_errors=True)[0]
        assert outcome.result is not None  # raise_errors guarantees this
        outcome.result.stats.elapsed_seconds = time.perf_counter() - start
        return outcome.result

    def run(
        self,
        queries: Iterable[SelectionQuery],
        *,
        raise_errors: bool = False,
    ) -> list[QueryOutcome]:
        """Execute a batch of queries, returning outcomes in input order.

        With ``raise_errors=False`` (the service default) a failing query —
        malformed pool, infeasible budget, … — yields an outcome carrying
        the error while the rest of the batch completes; with
        ``raise_errors=True`` the first failure propagates as an exception.

        Concurrent calls are safe when the engine has an executor (the async
        drainer's shard fan-out relies on this); the sequential path assumes
        one caller at a time, as before.
        """
        batch = list(queries)
        outcomes: list[QueryOutcome] = [
            QueryOutcome(task_id=q.task_id) for q in batch
        ]
        with self._lock:
            self.stats.queries_run += len(batch)
            resolved: list[
                tuple[int, SelectionQuery, CandidatePool, LivePool | None]
            ] = []
            for index, query in enumerate(batch):
                try:
                    pool, live = self._resolve(query)
                    resolved.append((index, query, pool, live))
                except Exception as exc:
                    if raise_errors:
                        raise
                    outcomes[index].exception = exc

        if self._executor is not None:
            self._run_sharded(resolved, outcomes, raise_errors)
            return outcomes

        altr_items = [item for item in resolved if item[1].model == "altr"]
        other_items = [item for item in resolved if item[1].model != "altr"]
        self._run_altr(altr_items, outcomes, raise_errors)
        self._run_serial(other_items, outcomes, raise_errors)
        return outcomes

    # ------------------------------------------------------------------
    # sharded execution: plan in the parent, execute in the worker shards
    # ------------------------------------------------------------------
    def _known_profile(
        self, pool: CandidatePool, live: LivePool | None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """A sweep profile the parent already holds (cache hit or live pool).

        Cold pools return ``None`` — the worker computes and caches the
        sweep, which is exactly the work sharding parallelises.
        """
        cached = self._cache.get(pool.fingerprint)
        if cached is not None:
            self._adopt_frontier(pool, live, cached)
            return cached
        if live is not None:
            profile = live.sweep_profile()
            self._cache.put(pool.fingerprint, *profile)
            self.stats.live_profiles += 1
            self._adopt_frontier(pool, live, profile)
            return profile
        return None

    # ------------------------------------------------------------------
    # answer frontier: O(log n) repeat queries, probed before planning
    # ------------------------------------------------------------------
    def _adopt_frontier(
        self,
        pool: CandidatePool,
        live: LivePool | None,
        profile: tuple[np.ndarray, np.ndarray],
    ) -> None:
        """Materialise the pool's answer frontier once its profile is known.

        Live pools hand over their own delta-maintained frontier (repaired,
        not rebuilt, across churn); frozen pools get a fresh build from the
        profile — an ``O(entries)`` running-argmin pass, which the cost
        model's break-even says amortises after a single repeat probe.
        Ineligible shapes (non-AltrM is handled by the callers; pools below
        the build-vs-probe crossover here) are skipped.
        """
        if not self._frontier.enabled:
            return
        if not frontier_eligible("altr", pool.size):
            return
        if pool.fingerprint in self._frontier:
            return
        if live is not None:
            frontier, mode = live.answer_frontier()
        else:
            ns, jers = profile
            frontier = AnswerFrontier.build(ns, jers, fingerprint=pool.fingerprint)
            mode = "built"
        self._frontier.put(frontier, mode=mode)

    def _frontier_answer(
        self,
        query: SelectionQuery,
        pool: CandidatePool,
        outcome: QueryOutcome,
        raise_errors: bool,
    ) -> bool:
        """Try to answer one AltrM query from the frontier cache.

        Returns ``True`` when the outcome was filled (result *or* the same
        error the oracle path would have raised).  The hit path replicates
        the plan pipeline's observable behaviour exactly: the budget is
        validated the way ``plan_query`` would (AltrM ignores it otherwise),
        and an unsatisfiable ``max_size`` raises the identical
        :class:`ValueError` as :func:`~repro.core.jer.best_odd_prefix`.
        """
        if not self._frontier.enabled:
            return False
        if not frontier_eligible(query.model, pool.size):
            return False
        frontier = self._frontier.get(pool.fingerprint)
        if frontier is None:
            return False
        start = time.perf_counter()
        try:
            if query.budget is not None:
                validate_budget(query.budget)
            result = frontier.select(pool.ordered, max_size=query.max_size)
        except Exception as exc:
            if raise_errors:
                raise
            outcome.exception = exc
            self.stats.frontier_hits += 1
            return True
        elapsed = time.perf_counter() - start
        result.stats.elapsed_seconds = elapsed
        outcome.result = result
        outcome.elapsed_seconds = elapsed
        self.stats.frontier_hits += 1
        return True

    def _run_sharded(
        self,
        items: Sequence[tuple[int, SelectionQuery, CandidatePool, LivePool | None]],
        outcomes: list[QueryOutcome],
        raise_errors: bool,
    ) -> None:
        assert self._executor is not None
        with self._lock:
            payloads: list[tuple[int, PlanPayload]] = []
            blocks: dict[str, PoolColumns] = {}
            probed: set[str] = set()  # pools whose known profile was looked up
            for index, query, pool, live in items:
                try:
                    # Frontier hits short-circuit before the query reaches a
                    # shard: no plan, no payload, no worker round trip.
                    if self._frontier_answer(query, pool, outcomes[index], raise_errors):
                        continue
                    plan = self._plan_for(query, pool)
                    fingerprint = pool.fingerprint
                    is_altr = plan.operator == "altr-sweep"
                    profile = None
                    if is_altr and fingerprint not in probed:
                        probed.add(fingerprint)
                        profile = self._known_profile(pool, live)
                    block = blocks.get(fingerprint)
                    if block is None:
                        blocks[fingerprint] = PoolColumns.from_view(
                            plan.view,
                            fingerprint=fingerprint,
                            need_ids=not is_altr,
                            profile=profile,
                        )
                    else:
                        if not is_altr and block.ids is None:
                            # First non-AltrM query on this pool: its solver
                            # tie-breaks on juror ids, so the block gains them.
                            block = replace(block, ids=plan.view.ids)
                        if profile is not None and block.profile is None:
                            block = replace(block, profile=profile)
                        blocks[fingerprint] = block
                    payloads.append(
                        (index, PlanPayload.from_plan(plan, fingerprint=fingerprint))
                    )
                except Exception as exc:
                    if raise_errors:
                        raise
                    outcomes[index].exception = exc
        # Placement policy: the scheduler turns the planned payloads into
        # per-shard work units (bin-packed + split under "cost", the static
        # fingerprint hash under "hash"); the executor runs them (stealing
        # only under "cost") and split sub-answers fold back to one answer
        # per query before inflation.
        units, splits = self._sched.build(payloads, blocks, self._executor)
        raw_answers, report = self._executor.run_schedule(
            units, steal=self._sched.steal_enabled
        )
        answers = merge_split_answers(raw_answers, units, blocks)
        with self._lock:
            self.stats.shard_batches += report.shards_used
            self.stats.split_queries += splits
            self.stats.stolen_units += report.steals
            pools = {index: pool for index, _, pool, _ in items}
            for index, answer, elapsed in answers:
                outcomes[index].elapsed_seconds = elapsed
                if isinstance(answer, BaseException):
                    outcomes[index].exception = answer
                else:
                    # Workers ship member *positions*; inflate them against
                    # the parent's own Juror objects — the same objects the
                    # sequential path would have selected.
                    result = rebuild_result(pools[index].ordered, answer)
                    # Same convention as the sequential paths: the result's
                    # stats carry the per-query wall time.
                    result.stats.elapsed_seconds = elapsed
                    outcomes[index].result = result
                    self.stats.sharded_queries += 1
        if raise_errors:
            for outcome in outcomes:
                if outcome.exception is not None:
                    raise outcome.exception

    # ------------------------------------------------------------------
    # AltrM: shared vectorized sweeps
    # ------------------------------------------------------------------
    def _run_altr(
        self,
        items: Sequence[tuple[int, SelectionQuery, CandidatePool, LivePool | None]],
        outcomes: list[QueryOutcome],
        raise_errors: bool,
    ) -> None:
        if not items:
            return
        # Pass 0: frontier probes.  A hit answers the query right here —
        # no plan, no kernel — so only the misses go through profile
        # resolution below.
        items = [
            item
            for item in items
            if not self._frontier_answer(item[1], item[2], outcomes[item[0]], raise_errors)
        ]
        if not items:
            return
        profiles: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        missing: dict[str, CandidatePool] = {}
        for _, _, pool, live in items:
            fingerprint = pool.fingerprint
            if fingerprint in profiles or fingerprint in missing:
                continue
            cached = self._cache.get(fingerprint)
            if cached is not None:
                profiles[fingerprint] = cached
            elif live is not None:
                # The live pool delta-maintains its own profile: reuse it
                # (and its unchanged prefix rows) instead of resweeping.
                profile = live.sweep_profile()
                profiles[fingerprint] = profile
                self._cache.put(fingerprint, *profile)
                self.stats.live_profiles += 1
            else:
                missing[fingerprint] = pool

        # One vectorized 2-D sweep per distinct pool size.
        by_size: dict[int, list[CandidatePool]] = {}
        for pool in missing.values():
            by_size.setdefault(pool.size, []).append(pool)
        for pools in by_size.values():
            matrix = np.stack([pool.error_rates for pool in pools])
            ns, jer_matrix = batch_prefix_jer_sweep(matrix)
            self.stats.batch_sweeps += 1
            self.stats.pools_swept += len(pools)
            for row, pool in enumerate(pools):
                # Copy the row out of the batch matrix: a view would pin the
                # whole (B, K) matrix in memory for as long as any one
                # profile stays cached.
                profile = (ns, jer_matrix[row].copy())
                profiles[pool.fingerprint] = profile
                self._cache.put(pool.fingerprint, *profile)

        # Materialise answer frontiers for every pool touched this pass, so
        # the *next* repeat query probes in O(log n) instead of re-planning.
        if self._frontier.enabled:
            adopted: set[str] = set()
            for _, _, pool, live in items:
                fingerprint = pool.fingerprint
                if fingerprint in adopted:
                    continue
                adopted.add(fingerprint)
                self._adopt_frontier(pool, live, profiles[fingerprint])

        for index, query, pool, _ in items:
            start = time.perf_counter()
            try:
                plan = self._plan_for(query, pool)
                self._seq_assigned_cost += plan_cost(plan)
                result = execute_plan(plan, profile=profiles[pool.fingerprint])
            except Exception as exc:
                self._seq_busy_seconds += time.perf_counter() - start
                if raise_errors:
                    raise
                outcomes[index].exception = exc
                continue
            elapsed = time.perf_counter() - start
            self._seq_busy_seconds += elapsed
            result.stats.elapsed_seconds = elapsed
            outcomes[index].result = result
            outcomes[index].elapsed_seconds = elapsed

    # ------------------------------------------------------------------
    # PayM / exact: per-query plan execution
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        items: Sequence[tuple[int, SelectionQuery, CandidatePool, LivePool | None]],
        outcomes: list[QueryOutcome],
        raise_errors: bool,
    ) -> None:
        for index, query, pool, _ in items:
            start = time.perf_counter()
            try:
                plan = self._plan_for(query, pool)
                self._seq_assigned_cost += plan_cost(plan)
                result = execute_plan(plan)
            except Exception as exc:
                self._seq_busy_seconds += time.perf_counter() - start
                if raise_errors:
                    raise
                outcomes[index].exception = exc
                continue
            elapsed = time.perf_counter() - start
            self._seq_busy_seconds += elapsed
            outcomes[index].result = result
            outcomes[index].elapsed_seconds = elapsed
