"""Batch jury-selection engine.

The paper's workload is inherently batched: a crowdsourcing platform must
select juries for thousands of concurrent decision tasks, frequently drawing
on the same candidate pool.  :class:`BatchSelectionEngine` accepts many
:class:`SelectionQuery` objects at once — mixed AltrM / PayM / exact
strategies, shared or per-task pools — and executes them through three
specialised paths:

Every query is answered through the plan layer: the engine resolves the
candidate source to a pool, calls :func:`repro.plan.plan_query` (the single
front door that parses model strings and picks the physical operator) and
executes the plan with :func:`repro.plan.execute_plan`.  On top of that one
path the engine adds the batch-shaped optimisations:

* **AltrM queries** are answered from odd-prefix JER profiles.  Distinct
  pools of equal size are stacked into one matrix and swept together by the
  vectorized 2-D kernel (:func:`repro.core.jer.batch_prefix_jer_sweep`);
  profiles are cached per pool fingerprint (:class:`PrefixSweepCache`), so a
  pool shared by 1,000 tasks is swept exactly once, and the cached profile
  is handed to the plan's sweep operator.
* **PayM queries** execute the columnar greedy operator per query (the
  greedy is inherently sequential per instance, but its pair trials are
  scored block-wise — see :mod:`repro.core.selection.pay`).
* **Exact queries** execute the enumeration / branch-and-bound operator the
  cost model picks, optionally fanned out over a ``concurrent.futures``
  process pool (``max_workers > 1``) since exact search dominates batch
  latency.

Results are **bit-identical** to the single-query selectors — both run the
same plan->operator pipeline, so they cannot diverge.  :meth:`BatchSelectionEngine.plan`
returns the plan for a query *without* executing it (the ``repro-select
explain`` surface).
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.jer import batch_prefix_jer_sweep
from repro.core.juror import Juror
from repro.core.selection.base import SelectionResult
from repro.plan import SelectionPlan, execute_plan, normalize_model, plan_query
from repro.service.cache import DEFAULT_CACHE_SIZE, PrefixSweepCache
from repro.service.pool import CandidatePool
from repro.service.registry import LivePool, PoolRegistry

__all__ = ["SelectionQuery", "QueryOutcome", "BatchSelectionEngine"]


@dataclass(frozen=True)
class SelectionQuery:
    """One jury-selection request inside a batch.

    Parameters
    ----------
    task_id:
        Caller-chosen identifier echoed back on the outcome.
    candidates:
        Inline candidate jurors; mutually exclusive with ``pool`` and
        ``pool_name``.
    pool:
        A shared :class:`CandidatePool`.  Queries referencing the same pool
        object (or pools with equal fingerprints) share one prefix sweep.
    pool_name:
        Name of a :class:`~repro.service.registry.LivePool` in the engine's
        registry.  The query runs against a snapshot of the pool's state at
        resolution time; its delta-maintained sweep profile is reused on
        cache misses.
    model:
        ``"altr"`` (AltrALG optimum), ``"pay"`` (PayALG greedy, requires
        ``budget``) or ``"exact"`` (enumeration / branch-and-bound optimum).
    budget:
        PayM budget; required for ``"pay"``, optional for ``"exact"``.
    max_size:
        Optional cap on the jury size (``"altr"`` / ``"exact"``).
    variant:
        PayALG variant: ``"paper"`` or ``"improved"``.
    method:
        Exact-solver method: ``"auto"``, ``"enumerate"`` or
        ``"branch-and-bound"``.
    """

    task_id: str
    candidates: tuple[Juror, ...] | None = None
    pool: CandidatePool | None = None
    pool_name: str | None = None
    model: str = "altr"
    budget: float | None = None
    max_size: int | None = None
    variant: str = "paper"
    method: str = "auto"

    def __post_init__(self) -> None:
        # The plan layer owns model-string parsing; canonicalise once here
        # so every downstream comparison sees "altr"/"pay"/"exact".
        object.__setattr__(self, "model", normalize_model(self.model))
        sources = sum(
            source is not None
            for source in (self.candidates, self.pool, self.pool_name)
        )
        if sources != 1:
            raise ValueError(
                "exactly one of 'candidates', 'pool' and 'pool_name' must be "
                "provided"
            )
        if self.model == "pay" and self.budget is None:
            raise ValueError("model 'pay' requires a budget")

    def resolve_pool(self) -> CandidatePool:
        """The pool this query selects from (building one for inline candidates).

        ``pool_name`` queries cannot be resolved without a registry; the
        engine resolves those itself.
        """
        if self.pool_name is not None:
            raise ValueError(
                f"query {self.task_id!r} references registry pool "
                f"{self.pool_name!r}; run it through an engine with a registry"
            )
        if self.pool is not None:
            return self.pool
        return CandidatePool(self.candidates)


@dataclass
class QueryOutcome:
    """Result slot for one query of a batch: either a result or an error.

    ``error`` is the legacy flat message string, kept populated for one
    release; ``exception`` carries the failure itself so transports can
    report a structured code + message (see :attr:`error_info`) instead of
    parsing strings.
    """

    task_id: str
    result: SelectionResult | None = None
    error: str | None = None
    elapsed_seconds: float = 0.0
    exception: BaseException | None = None

    @property
    def ok(self) -> bool:
        """True when the query produced a selection."""
        return self.result is not None

    @property
    def error_info(self):
        """Structured :class:`~repro.api.ErrorInfo` for the failure, if any.

        Built lazily from :attr:`exception` (falling back to the legacy
        message string), so the engine itself never depends on the protocol
        layer.
        """
        if self.ok:
            return None
        # Local import: repro.api sits above the service layer.
        from repro.api.protocol import ErrorInfo

        if self.exception is not None:
            return ErrorInfo.from_exception(self.exception)
        return ErrorInfo(code="internal", message=self.error or "failed")


@dataclass
class EngineStats:
    """Counters describing the work an engine has performed (cumulative)."""

    queries_run: int = 0
    batch_sweeps: int = 0
    pools_swept: int = 0
    exact_subprocesses: int = 0
    live_profiles: int = 0


def _exact_worker(
    payload: tuple[tuple[Juror, ...], float | None, str, int | None],
) -> SelectionResult:
    """Process-pool entry point for one exact query (must be picklable).

    Replans in the worker (Juror tuples pickle cheaply; plans do not): the
    same ``plan_query() -> execute_plan()`` path as in-process execution.
    """
    members, budget, method, max_size = payload
    plan = plan_query(
        candidates=members,
        model="exact",
        budget=budget,
        method=method,
        max_size=max_size,
        task_id="<worker>",
    )
    return execute_plan(plan)


class BatchSelectionEngine:
    """Execute many jury-selection queries through shared, vectorized kernels.

    Parameters
    ----------
    cache_size:
        Capacity of the per-engine prefix-sweep cache (profiles retained
        across :meth:`run` calls).  ``0`` disables cross-run caching;
        within one batch, pools are still deduplicated by fingerprint.
    max_workers:
        When ``> 1``, exact queries are fanned out over a
        ``concurrent.futures`` process pool of this size.  AltrM/PayM
        queries always run in-process (they are vectorized / cheap).
    registry:
        Optional :class:`~repro.service.registry.PoolRegistry` against which
        ``pool_name`` queries are resolved.  Live pools contribute their
        delta-maintained sweep profiles on cache misses, so a churned pool
        costs one partial repair instead of a full engine-side sweep.

    Examples
    --------
    >>> from repro.core.juror import jurors_from_arrays
    >>> engine = BatchSelectionEngine()
    >>> cands = tuple(jurors_from_arrays([0.1, 0.2, 0.2, 0.3, 0.3]))
    >>> out = engine.run([SelectionQuery(task_id="t1", candidates=cands)])
    >>> out[0].result.size, round(out[0].result.jer, 4)
    (5, 0.0704)
    """

    def __init__(
        self,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_workers: int | None = None,
        registry: PoolRegistry | None = None,
    ) -> None:
        self._cache = PrefixSweepCache(maxsize=cache_size)
        self._max_workers = max_workers
        self._registry = registry
        self.stats = EngineStats()

    @property
    def cache(self) -> PrefixSweepCache:
        """The engine's prefix-sweep cache (inspectable in tests/ops)."""
        return self._cache

    @property
    def registry(self) -> PoolRegistry | None:
        """The registry ``pool_name`` queries resolve against (if any)."""
        return self._registry

    def _resolve(self, query: SelectionQuery) -> tuple[CandidatePool, LivePool | None]:
        """Resolve a query to a frozen pool (plus its live pool, if any)."""
        if query.pool_name is None:
            return query.resolve_pool(), None
        if self._registry is None:
            raise ValueError(
                f"query {query.task_id!r} references registry pool "
                f"{query.pool_name!r} but the engine has no registry"
            )
        live = self._registry.get(query.pool_name)
        return live.snapshot(), live

    @staticmethod
    def _plan_for(query: SelectionQuery, pool: CandidatePool) -> SelectionPlan:
        """Plan one resolved query (the single front door for every model)."""
        return plan_query(
            pool=pool,
            model=query.model,
            budget=query.budget,
            max_size=query.max_size,
            variant=query.variant,
            method=query.method,
            task_id=query.task_id,
        )

    def plan(self, query: SelectionQuery) -> SelectionPlan:
        """Resolve and plan a query *without* executing it.

        This is the EXPLAIN surface: the returned
        :class:`~repro.plan.SelectionPlan` carries the chosen physical
        operator, the numeric backends, and the cost-model inputs; render it
        with :meth:`~repro.plan.SelectionPlan.describe`.
        """
        pool, _ = self._resolve(query)
        return self._plan_for(query, pool)

    # ------------------------------------------------------------------
    def select(self, query: SelectionQuery) -> SelectionResult:
        """Run a single query, raising on failure (library-style API).

        The result's ``stats.elapsed_seconds`` covers the whole engine pass,
        matching what the scalar selectors historically reported.
        """
        start = time.perf_counter()
        outcome = self.run([query], raise_errors=True)[0]
        assert outcome.result is not None  # raise_errors guarantees this
        outcome.result.stats.elapsed_seconds = time.perf_counter() - start
        return outcome.result

    def run(
        self,
        queries: Iterable[SelectionQuery],
        *,
        raise_errors: bool = False,
    ) -> list[QueryOutcome]:
        """Execute a batch of queries, returning outcomes in input order.

        With ``raise_errors=False`` (the service default) a failing query —
        malformed pool, infeasible budget, … — yields an outcome carrying
        the error message while the rest of the batch completes; with
        ``raise_errors=True`` the first failure propagates as an exception.
        """
        batch = list(queries)
        outcomes: list[QueryOutcome] = [
            QueryOutcome(task_id=q.task_id) for q in batch
        ]
        self.stats.queries_run += len(batch)

        resolved: list[tuple[int, SelectionQuery, CandidatePool, LivePool | None]] = []
        for index, query in enumerate(batch):
            try:
                pool, live = self._resolve(query)
                resolved.append((index, query, pool, live))
            except Exception as exc:
                if raise_errors:
                    raise
                outcomes[index].error = str(exc)
                outcomes[index].exception = exc

        altr_items = [item for item in resolved if item[1].model == "altr"]
        pay_items = [item for item in resolved if item[1].model == "pay"]
        exact_items = [item for item in resolved if item[1].model == "exact"]

        self._run_altr(altr_items, outcomes, raise_errors)
        self._run_serial(pay_items, outcomes, raise_errors, self._answer_pay)
        self._run_exact(exact_items, outcomes, raise_errors)
        return outcomes

    # ------------------------------------------------------------------
    # AltrM: shared vectorized sweeps
    # ------------------------------------------------------------------
    def _run_altr(
        self,
        items: Sequence[tuple[int, SelectionQuery, CandidatePool, LivePool | None]],
        outcomes: list[QueryOutcome],
        raise_errors: bool,
    ) -> None:
        if not items:
            return
        profiles: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        missing: dict[str, CandidatePool] = {}
        for _, _, pool, live in items:
            fingerprint = pool.fingerprint
            if fingerprint in profiles or fingerprint in missing:
                continue
            cached = self._cache.get(fingerprint)
            if cached is not None:
                profiles[fingerprint] = cached
            elif live is not None:
                # The live pool delta-maintains its own profile: reuse it
                # (and its unchanged prefix rows) instead of resweeping.
                profile = live.sweep_profile()
                profiles[fingerprint] = profile
                self._cache.put(fingerprint, *profile)
                self.stats.live_profiles += 1
            else:
                missing[fingerprint] = pool

        # One vectorized 2-D sweep per distinct pool size.
        by_size: dict[int, list[CandidatePool]] = {}
        for pool in missing.values():
            by_size.setdefault(pool.size, []).append(pool)
        for pools in by_size.values():
            matrix = np.stack([pool.error_rates for pool in pools])
            ns, jer_matrix = batch_prefix_jer_sweep(matrix)
            self.stats.batch_sweeps += 1
            self.stats.pools_swept += len(pools)
            for row, pool in enumerate(pools):
                # Copy the row out of the batch matrix: a view would pin the
                # whole (B, K) matrix in memory for as long as any one
                # profile stays cached.
                profile = (ns, jer_matrix[row].copy())
                profiles[pool.fingerprint] = profile
                self._cache.put(pool.fingerprint, *profile)

        for index, query, pool, _ in items:
            start = time.perf_counter()
            try:
                result = execute_plan(
                    self._plan_for(query, pool),
                    profile=profiles[pool.fingerprint],
                )
            except Exception as exc:
                if raise_errors:
                    raise
                outcomes[index].error = str(exc)
                outcomes[index].exception = exc
                continue
            elapsed = time.perf_counter() - start
            result.stats.elapsed_seconds = elapsed
            outcomes[index].result = result
            outcomes[index].elapsed_seconds = elapsed

    # ------------------------------------------------------------------
    # PayM / exact: per-query plan execution
    # ------------------------------------------------------------------
    @classmethod
    def _answer_pay(cls, query: SelectionQuery, pool: CandidatePool) -> SelectionResult:
        return execute_plan(cls._plan_for(query, pool))

    @classmethod
    def _answer_exact(cls, query: SelectionQuery, pool: CandidatePool) -> SelectionResult:
        return execute_plan(cls._plan_for(query, pool))

    def _run_serial(
        self,
        items: Sequence[tuple[int, SelectionQuery, CandidatePool, LivePool | None]],
        outcomes: list[QueryOutcome],
        raise_errors: bool,
        answer,
    ) -> None:
        for index, query, pool, _ in items:
            start = time.perf_counter()
            try:
                result = answer(query, pool)
            except Exception as exc:
                if raise_errors:
                    raise
                outcomes[index].error = str(exc)
                outcomes[index].exception = exc
                continue
            elapsed = time.perf_counter() - start
            outcomes[index].result = result
            outcomes[index].elapsed_seconds = elapsed

    def _run_exact(
        self,
        items: Sequence[tuple[int, SelectionQuery, CandidatePool, LivePool | None]],
        outcomes: list[QueryOutcome],
        raise_errors: bool,
    ) -> None:
        workers = self._max_workers or 0
        if workers <= 1 or len(items) <= 1:
            self._run_serial(items, outcomes, raise_errors, self._answer_exact)
            return
        try:
            with ProcessPoolExecutor(max_workers=workers) as executor:
                futures = [
                    (
                        index,
                        executor.submit(
                            _exact_worker,
                            (pool.ordered, query.budget, query.method, query.max_size),
                        ),
                        time.perf_counter(),
                    )
                    for index, query, pool, _ in items
                ]
                for index, future, start in futures:
                    try:
                        result = future.result()
                    except (OSError, BrokenExecutor):
                        raise  # executor died — handled by the serial fallback
                    except Exception as exc:
                        if raise_errors:
                            raise
                        outcomes[index].error = str(exc)
                        outcomes[index].exception = exc
                        continue
                    elapsed = time.perf_counter() - start
                    outcomes[index].result = result
                    outcomes[index].elapsed_seconds = elapsed
                    self.stats.exact_subprocesses += 1
        except (OSError, PermissionError, BrokenExecutor):
            # Sandboxed / fork-restricted environments (or a pool that died
            # mid-batch): degrade gracefully, re-running only the queries
            # that have neither a result nor a captured error yet.
            remaining = [
                item
                for item in items
                if outcomes[item[0]].result is None and outcomes[item[0]].error is None
            ]
            self._run_serial(remaining, outcomes, raise_errors, self._answer_exact)
