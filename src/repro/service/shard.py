"""Sharded multi-process plan execution with worker-local sweep caches.

The selection workload is embarrassingly parallel across independent queries
and pools, but one Python process can only use one core.  This module moves
*physical plan execution* — the O(N^2) prefix sweeps, the PayALG greedy, the
exact solvers — into a persistent pool of worker processes while keeping
*planning* (and therefore the deterministic operator choice) in the parent:

parent                                   worker ``s``
------                                   ------------
resolve pool, ``plan_query()``   ──►     rebuild :class:`~repro.plan.view.PoolView`
ship :class:`PlanPayload`                from the payload's columns,
(columnar eps/reqs/ids arrays,           ``execute_plan()`` with the
never pickled ``Juror`` lists)           worker-local :class:`PrefixSweepCache`

Work placement is a *policy* decided above this module: the scheduling layer
(:mod:`repro.service.sched`) assembles :class:`WorkUnit`s — per-shard batches
of payloads plus the pool blocks they reference — and :meth:`run_schedule`
executes them.  Under the ``hash`` policy every payload lands on
:meth:`ShardedExecutor.shard_of` (the content fingerprint hashed onto one of
``N`` shards, each a dedicated single-worker ``ProcessPoolExecutor``); under
the ``cost`` policy units are bin-packed by planner cost estimates with
fingerprint affinity as the tie-break, heavy exact enumerations are **split**
into candidate-range sub-payloads (merged bit-identically here, by
:func:`merge_split_answers`), and an idle shard **steals** queued units from
the heaviest queue.  Inside one unit, cache-missing AltrM pools of equal size
are stacked and swept together by
:func:`repro.core.jer.batch_prefix_jer_sweep`, exactly like the in-process
batch engine.

**Bit-identity.**  Workers run the *same* ``execute_plan()`` over the same
columnar view and the same stacked sweep kernel the sequential engine uses,
and the plan (operator + backends) was fixed in the parent — so sharded
selections are bit-identical to sequential dispatch by construction
*regardless of which shard executes a unit* (results depend only on the
payload and its pool block, never on placement), and the oracle tests assert
it under every scheduling policy.  Split enumerations partition the
first-candidate-index axis and the parent folds the partial winners with the
enumerator's own comparator, so merged answers — winners and summed
counters — equal the unsplit run's.

**Shared worker pools.**  By default every :class:`ShardedExecutor` with the
same worker count shares one process-global set of shard processes (worker
caches are keyed by content fingerprint, so sharing across engines can never
serve a wrong profile; it only saves fork cost and memory).  Pass
``dedicated=True`` for a private set — tests that assert cold-cache
behaviour use this — and ``close()`` it when done.

**Degraded environments.**  Where process pools are unavailable (sandboxed /
fork-restricted containers), the executor transparently falls back to
in-process execution of the same shard batches: slower, but identical
results — nothing above this module needs to care.

**Fault-injection seam.**  With :data:`FAULT_INJECTION` switched on in the
*parent* (tests only; default off), a payload whose ``task_id`` starts with
:data:`FAULT_MARKER` is marked at planning time and makes the worker raise
the named :class:`~repro.errors.ReproError` subclass instead of executing.
The tests use it to drive every registered error class through a real
worker process and assert its wire code survives the round trip; with the
flag off (production), such task ids execute normally.
"""

from __future__ import annotations

import atexit
import math
import os
import threading
import time
from collections import deque
from collections.abc import Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass

import numpy as np

from repro.core.jer import batch_prefix_jer_sweep
from repro.core.juror import Jury
from repro.core.selection.base import SelectionResult, SelectionStats
from repro.core.selection.exact import enumerate_best_in_range
from repro.errors import InfeasibleSelectionError, ReproError
from repro.plan import SelectionPlan, execute_plan
from repro.plan.cost import plan_cost
from repro.plan.view import PoolView
from repro.service.cache import DEFAULT_CACHE_SIZE, PrefixSweepCache

__all__ = [
    "PlanPayload",
    "PoolColumns",
    "PartialEnumResult",
    "ScheduleReport",
    "ShardedExecutor",
    "WorkUnit",
    "hash_units",
    "merge_split_answers",
    "shutdown_shared_pools",
    "FAULT_MARKER",
]

#: ``task_id`` prefix that makes a worker raise instead of execute (test
#: seam; only honoured while :data:`FAULT_INJECTION` is True).  The suffix
#: names a :class:`~repro.errors.ReproError` subclass, e.g.
#: ``"__repro_fault__:InvalidJuryError"``.
FAULT_MARKER = "__repro_fault__:"

#: Master switch for the fault-injection seam, read in the *parent* when a
#: payload is built — so a production task id that happens to carry the
#: marker executes normally.  Tests flip it via ``monkeypatch.setattr``.
FAULT_INJECTION = False


@dataclass(frozen=True)
class PoolColumns:
    """One pool's shippable columns, shared by every payload targeting it.

    The pool decomposed into parallel ``eps``/``reqs``/``ids`` vectors
    (Lemma 3 order) — pickling a few float64 arrays instead of N ``Juror``
    objects, and pickling them **once per shard batch** however many
    queries of the batch hit the pool.  ``ids`` travel only when some
    referencing plan is PayM / exact — those solvers break ties on
    juror-id strings and their juries are mapped back to positions by id;
    AltrM juries are sorted prefixes, so they never need the ids.
    ``profile`` optionally carries a parent-known ``(ns, jers)`` sweep
    profile (live-pool delta repairs, parent cache hits) so the worker
    does not recompute it.
    """

    eps: np.ndarray
    reqs: np.ndarray
    ids: tuple[str, ...] | None
    fingerprint: str
    pool_id: str | None
    profile: tuple[np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_view(
        cls,
        view: PoolView,
        *,
        fingerprint: str,
        need_ids: bool,
        profile: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "PoolColumns":
        return cls(
            eps=np.asarray(view.eps),
            reqs=np.asarray(view.reqs),
            ids=view.ids if need_ids else None,
            fingerprint=fingerprint,
            pool_id=view.pool_id,
            profile=profile,
        )

    def to_view(self) -> PoolView:
        return PoolView(
            self.eps,
            self.reqs,
            ids=self.ids,
            fingerprint=self.fingerprint,
            pool_id=self.pool_id,
        )


@dataclass(frozen=True)
class PlanPayload:
    """A parent-planned query's logical fields, in shippable form.

    The pool itself travels separately as a :class:`PoolColumns` block
    (one per distinct fingerprint per shard batch); ``fingerprint`` is the
    reference that joins them back together in the worker.
    """

    task_id: str
    model: str
    operator: str
    jer_backend: str
    pmf_backend: str
    budget: float | None
    max_size: int | None
    variant: str
    method: str
    jer_tie_eps: float
    cost: object
    fingerprint: str
    #: Name of a ReproError subclass the worker must raise instead of
    #: executing — set at build time only while :data:`FAULT_INJECTION` is on.
    fault: str | None = None
    #: Compiled-kernel backend the parent's plan chose; workers honour it so
    #: a sharded query dispatches exactly like in-process execution would
    #: (defaulted so payloads pickled by older parents still inflate).
    kernel_backend: str = "numpy"
    #: Candidate-range ``[lo, hi)`` of affordable-subview *first* indices this
    #: sub-payload enumerates — set by the cost scheduler when it splits a
    #: heavy ``exact-enumerate`` query across shards; ``None`` (default)
    #: executes the whole plan.  Split answers come back as
    #: :class:`PartialEnumResult` and are folded by
    #: :func:`merge_split_answers`.
    split: tuple[int, int] | None = None

    @classmethod
    def from_plan(cls, plan: SelectionPlan, *, fingerprint: str) -> "PlanPayload":
        return cls(
            task_id=plan.task_id,
            model=plan.model,
            operator=plan.operator,
            jer_backend=plan.jer_backend,
            pmf_backend=plan.pmf_backend,
            budget=plan.budget,
            max_size=plan.max_size,
            variant=plan.variant,
            method=plan.method,
            jer_tie_eps=plan.jer_tie_eps,
            cost=plan.cost,
            fingerprint=fingerprint,
            kernel_backend=plan.kernel_backend,
            fault=(
                plan.task_id[len(FAULT_MARKER) :].split(":", 1)[0]
                if FAULT_INJECTION and plan.task_id.startswith(FAULT_MARKER)
                else None
            ),
        )

    def to_plan(self, view: PoolView) -> SelectionPlan:
        """Rebuild the executable plan around the pool's reconstructed view."""
        return SelectionPlan(
            task_id=self.task_id,
            model=self.model,
            view=view,
            budget=self.budget,
            max_size=self.max_size,
            variant=self.variant,
            method=self.method,
            operator=self.operator,
            jer_backend=self.jer_backend,
            pmf_backend=self.pmf_backend,
            kernel_backend=self.kernel_backend,
            cost=self.cost,
            jer_tie_eps=self.jer_tie_eps,
        )


@dataclass(frozen=True)
class CompactResult:
    """A worker's answer, with jury members as *positions* into the pool.

    Shipping indices instead of ``Juror`` objects keeps the return pickle a
    few dozen bytes; the parent rebuilds the :class:`SelectionResult` from
    the very ``Juror`` objects its own pool holds
    (:func:`rebuild_result`) — the same objects the sequential path would
    have put in the jury.
    """

    indices: tuple[int, ...]
    jer: float
    algorithm: str
    model: str
    budget: float | None
    stats: SelectionStats


@dataclass(frozen=True)
class PartialEnumResult:
    """One shard's slice of a split exact enumeration.

    ``indices`` are *full-pool* positions of the best feasible jury whose
    smallest affordable-subview index falls in ``[lo, hi)`` — or ``None``
    when the range holds no feasible jury (not an error: the parent raises
    the enumerator's ``InfeasibleSelectionError`` only once every range of
    the partition comes back empty).
    """

    lo: int
    hi: int
    indices: tuple[int, ...] | None
    jer: float
    stats: SelectionStats


def rebuild_result(ordered, compact: CompactResult) -> SelectionResult:
    """Inflate a :class:`CompactResult` against the parent's member tuple."""
    return SelectionResult(
        jury=Jury([ordered[i] for i in compact.indices]),
        jer=compact.jer,
        algorithm=compact.algorithm,
        model=compact.model,
        budget=compact.budget,
        stats=compact.stats,
    )


# ----------------------------------------------------------------------
# worker side (runs inside the shard processes; also reused in-process by
# the degraded-environment fallback)
# ----------------------------------------------------------------------

#: One sweep-profile cache per worker *process*, keyed by pool fingerprint.
#: Inside a real shard process access is single-threaded; the lock matters
#: for the degraded in-process fallback, where the async drainer's fan-out
#: threads execute shard batches concurrently in the parent.
_LOCAL_CACHE = PrefixSweepCache(maxsize=DEFAULT_CACHE_SIZE)
_LOCAL_CACHE_LOCK = threading.Lock()


def _reset_after_fork() -> None:
    # A worker forked while some parent thread held the cache lock (or was
    # mid-mutation under it) would inherit a locked lock and a half-written
    # cache; fresh processes start with a fresh lock and a cold cache.
    global _LOCAL_CACHE, _LOCAL_CACHE_LOCK
    _LOCAL_CACHE = PrefixSweepCache(maxsize=DEFAULT_CACHE_SIZE)
    _LOCAL_CACHE_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython >= 3.7
    os.register_at_fork(after_in_child=_reset_after_fork)


def _raise_injected_fault(name: str) -> None:
    """Raise the :class:`~repro.errors.ReproError` subclass called ``name``."""
    stack: list[type[ReproError]] = [ReproError]
    while stack:
        cls = stack.pop()
        if cls.__name__ == name:
            raise cls(f"injected fault {name}")
        stack.extend(cls.__subclasses__())
    raise ReproError(f"injected fault {name}")


def _local_profiles(
    payloads: Sequence[tuple[int, PlanPayload]],
    blocks: dict[str, PoolColumns],
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Sweep profiles for the batch's AltrM pools, via the worker cache.

    Parent-shipped profiles are adopted into the cache; remaining misses are
    grouped by pool size and swept together in stacked 2-D kernel calls —
    the same stacking the sequential engine performs, so the numbers cannot
    differ.
    """
    wanted = {p.fingerprint for _, p in payloads if p.operator == "altr-sweep"}
    profiles: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    missing: dict[str, PoolColumns] = {}
    with _LOCAL_CACHE_LOCK:
        for fingerprint in wanted:
            block = blocks[fingerprint]
            if block.profile is not None:
                profiles[fingerprint] = block.profile
                _LOCAL_CACHE.put(fingerprint, *block.profile)
                continue
            cached = _LOCAL_CACHE.get(fingerprint)
            if cached is not None:
                profiles[fingerprint] = cached
            else:
                missing[fingerprint] = block
    by_size: dict[int, list[PoolColumns]] = {}
    for block in missing.values():
        by_size.setdefault(int(block.eps.size), []).append(block)
    for group in by_size.values():
        matrix = np.stack([block.eps for block in group])
        ns, jer_matrix = batch_prefix_jer_sweep(matrix)
        with _LOCAL_CACHE_LOCK:
            for row, block in enumerate(group):
                profile = (ns, jer_matrix[row].copy())
                profiles[block.fingerprint] = profile
                _LOCAL_CACHE.put(block.fingerprint, *profile)
    return profiles


def _compact(
    payload: PlanPayload, columns: PoolColumns, result: SelectionResult
) -> CompactResult:
    """Map a jury back to pool positions (prefix for AltrM, by id otherwise)."""
    if payload.operator == "altr-sweep":
        # Lemma 3: the AltrM optimum is a prefix of the sorted pool.
        indices = tuple(range(result.size))
    else:
        position = {juror_id: i for i, juror_id in enumerate(columns.ids)}
        indices = tuple(position[j.juror_id] for j in result.jury)
    return CompactResult(
        indices=indices,
        jer=result.jer,
        algorithm=result.algorithm,
        model=result.model,
        budget=result.budget,
        stats=result.stats,
    )


def _execute_split_payload(
    payload: PlanPayload, columns: PoolColumns
) -> PartialEnumResult:
    """Enumerate one candidate-range slice of a split exact query.

    Rebuilds the same budget-affordable subview the unsplit operator would
    (``execute_plan``'s exact path enumerates over ``_affordable_subview``),
    runs :func:`enumerate_best_in_range` on this sub-payload's first-index
    range, and maps the winner's subview positions back to full-pool
    positions.  Affordability-infeasible pools raise here exactly as the
    unsplit operator would — every sibling range raises the identical error,
    and the parent propagates the first.
    """
    from repro.plan.operators import _affordable_subview

    view = columns.to_view()
    sub = _affordable_subview(view, payload.budget)
    lo, hi = payload.split  # type: ignore[misc]
    indices, jer, stats = enumerate_best_in_range(
        sub, payload.budget, max_size=payload.max_size, first_lo=lo, first_hi=hi
    )
    if indices is not None and sub is not view:
        positions = np.nonzero(np.asarray(view.reqs) <= payload.budget)[0]
        indices = tuple(int(positions[i]) for i in indices)
    return PartialEnumResult(lo=lo, hi=hi, indices=indices, jer=jer, stats=stats)


def _execute_shard_batch(
    payloads: Sequence[tuple[int, PlanPayload]],
    blocks: dict[str, PoolColumns],
) -> list[tuple[int, CompactResult | PartialEnumResult | BaseException, float]]:
    """Execute one shard batch; one ``(key, result | exception, elapsed)``
    triple per payload, failures captured per item so a bad query never
    poisons its shard batch.  Split sub-payloads answer with
    :class:`PartialEnumResult` triples (several per key) that the parent
    folds via :func:`merge_split_answers`."""
    profiles = _local_profiles(payloads, blocks)
    # One reconstructed view per distinct pool: queries sharing a pool also
    # share its lazily materialised Juror tuple inside the worker.
    views: dict[str, PoolView] = {}
    answers: list[tuple[int, CompactResult | PartialEnumResult | BaseException, float]] = []
    for key, payload in payloads:
        start = time.perf_counter()
        try:
            if payload.fault is not None:
                _raise_injected_fault(payload.fault)
            fingerprint = payload.fingerprint
            answer: CompactResult | PartialEnumResult | BaseException
            if payload.split is not None:
                answer = _execute_split_payload(payload, blocks[fingerprint])
            else:
                view = views.get(fingerprint)
                if view is None:
                    view = views.setdefault(fingerprint, blocks[fingerprint].to_view())
                result = execute_plan(
                    payload.to_plan(view), profile=profiles.get(fingerprint)
                )
                answer = _compact(payload, blocks[fingerprint], result)
        except Exception as exc:
            answer = exc
        answers.append((key, answer, time.perf_counter() - start))
    return answers


def _invalidate_local(fingerprint: str) -> bool:
    """Evict one fingerprint from this process's local sweep cache."""
    with _LOCAL_CACHE_LOCK:
        return _LOCAL_CACHE.invalidate(fingerprint)


def _local_cache_stats() -> dict:
    """This process's local cache counters (shard introspection)."""
    with _LOCAL_CACHE_LOCK:
        return {
            "entries": len(_LOCAL_CACHE),
            "hits": _LOCAL_CACHE.hits,
            "misses": _LOCAL_CACHE.misses,
            "evictions": _LOCAL_CACHE.evictions,
        }


def _local_cache_contains(fingerprint: str) -> bool:
    with _LOCAL_CACHE_LOCK:
        return fingerprint in _LOCAL_CACHE


# ----------------------------------------------------------------------
# parent side — work units and split-result merging (mechanism; the
# placement *policy* lives in repro.service.sched)
# ----------------------------------------------------------------------


@dataclass
class WorkUnit:
    """One schedulable batch: payloads plus the pool blocks they reference.

    ``shard`` is the unit's *assigned* shard (affinity under ``hash``,
    bin-packed under ``cost``); stealing may execute it elsewhere.  ``cost``
    is the scheduler's summed :func:`repro.plan.cost.plan_cost` weight —
    what the assigned-cost counters and steal-victim choice operate on.
    """

    shard: int
    payloads: list[tuple[int, PlanPayload]]
    blocks: dict[str, PoolColumns]
    cost: float = 0.0


@dataclass
class ScheduleReport:
    """What one :meth:`ShardedExecutor.run_schedule` call did."""

    steals: int = 0
    fallback_units: int = 0
    shards_used: int = 0


def hash_units(
    executor: "ShardedExecutor",
    payloads: Sequence[tuple[int, PlanPayload]],
    blocks: dict[str, PoolColumns],
) -> list[WorkUnit]:
    """The static-hash placement as work units: one unit per
    :meth:`~ShardedExecutor.shard_of` shard, payloads in arrival order.

    This is the pre-scheduler dispatch exactly (the ``hash`` oracle policy);
    :meth:`ShardedExecutor.run_batch` and the scheduler's hash path both
    build through here.
    """
    groups: dict[int, list[tuple[int, PlanPayload]]] = {}
    for key, payload in payloads:
        groups.setdefault(executor.shard_of(payload.fingerprint), []).append(
            (key, payload)
        )
    units = []
    for shard, batch in groups.items():
        shard_blocks = {
            payload.fingerprint: blocks[payload.fingerprint] for _, payload in batch
        }
        units.append(
            WorkUnit(
                shard=shard,
                payloads=batch,
                blocks=shard_blocks,
                cost=sum(plan_cost(payload) for _, payload in batch),
            )
        )
    return units


def _split_improves(
    jer: float,
    indices: tuple[int, ...],
    best_jer: float,
    best_indices: tuple[int, ...] | None,
    ids: Sequence[str],
) -> bool:
    """The enumerator's ``_improves_indices`` comparator over full-pool
    positions: JER epsilon (1e-15, the enumerator's literal), then smaller
    jury, then lexicographic juror ids.  Keeping the constants and order
    identical is what makes the split merge bit-identical."""
    if jer < best_jer - 1e-15:
        return True
    if abs(jer - best_jer) <= 1e-15 and best_indices is not None:
        if len(indices) != len(best_indices):
            return len(indices) < len(best_indices)
        return tuple(ids[i] for i in indices) < tuple(ids[i] for i in best_indices)
    return False


def _merge_partials(
    partials: Sequence[PartialEnumResult],
    payload: PlanPayload,
    columns: PoolColumns,
) -> CompactResult:
    """Fold a split enumeration's range winners into the unsplit answer.

    Ranges partition the first-index axis, so folding the per-range winners
    in ascending-``lo`` order with the enumerator's comparator reproduces
    the sequential incumbent chain's outcome; counters sum to the unsplit
    run's (every combination was considered in exactly one range).
    """
    ids = columns.ids if columns.ids is not None else tuple(
        str(i) for i in range(int(columns.eps.size))
    )
    stats = SelectionStats()
    best_indices: tuple[int, ...] | None = None
    best_jer = math.inf
    for part in sorted(partials, key=lambda p: p.lo):
        stats.juries_considered += part.stats.juries_considered
        stats.jer_evaluations += part.stats.jer_evaluations
        stats.nodes_visited += part.stats.nodes_visited
        stats.bound_checks += part.stats.bound_checks
        stats.pruned_by_bound += part.stats.pruned_by_bound
        stats.elapsed_seconds += part.stats.elapsed_seconds
        if part.indices is None:
            continue
        if _split_improves(part.jer, part.indices, best_jer, best_indices, ids):
            best_jer, best_indices = part.jer, part.indices
    if best_indices is None:
        b = math.inf if payload.budget is None else payload.budget
        raise InfeasibleSelectionError(
            f"no odd-sized jury is affordable within budget {b:g}"
        )
    return CompactResult(
        indices=best_indices,
        jer=best_jer,
        algorithm="OPT-enumerate",
        model="AltrM" if payload.budget is None else "PayM",
        budget=payload.budget,
        stats=stats,
    )


def merge_split_answers(
    answers: Sequence[tuple[int, CompactResult | PartialEnumResult | BaseException, float]],
    units: Sequence[WorkUnit],
    blocks: dict[str, PoolColumns],
) -> list[tuple[int, CompactResult | BaseException, float]]:
    """Collapse split sub-payload answers back to one triple per query key.

    Non-split answers pass through untouched.  For each split key: any
    sub-range exception propagates (the deterministic failure modes — fault
    injection, budget-infeasible pools — raise identically in every range,
    so "first" is unambiguous); otherwise the range winners fold via
    :func:`_merge_partials`.  Elapsed is the *sum* of the parts — total
    worker compute, same meaning as the unsplit triple.
    """
    split_payload: dict[int, PlanPayload] = {}
    for unit in units:
        for key, payload in unit.payloads:
            if payload.split is not None:
                split_payload.setdefault(key, payload)
    if not split_payload:
        return list(answers)  # type: ignore[arg-type]
    merged: list[tuple[int, CompactResult | BaseException, float]] = []
    parts: dict[int, list[tuple[object, float]]] = {}
    for key, answer, elapsed in answers:
        if key in split_payload:
            parts.setdefault(key, []).append((answer, elapsed))
        else:
            merged.append((key, answer, elapsed))  # type: ignore[arg-type]
    for key, group in parts.items():
        payload = split_payload[key]
        elapsed = sum(e for _, e in group)
        failures = [a for a, _ in group if isinstance(a, BaseException)]
        if failures:
            merged.append((key, failures[0], elapsed))
            continue
        partials = [a for a, _ in group if isinstance(a, PartialEnumResult)]
        try:
            compact: CompactResult | BaseException = _merge_partials(
                partials, payload, blocks[payload.fingerprint]
            )
        except InfeasibleSelectionError as exc:
            compact = exc
        merged.append((key, compact, elapsed))
    return merged


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

#: Process-global shard pools, keyed by worker count.  Content-fingerprint
#: keying makes sharing across executors safe; it bounds the number of
#: worker processes one parent ever forks.
_SHARED_POOLS: dict[int, list[ProcessPoolExecutor | None]] = {}

#: Live (not yet closed) non-dedicated executors per worker count.  When the
#: last one of a count is closed, the shared shard processes of that count
#: are shut down too — shared pools outlive any single engine, but not every
#: engine, so a process that closes its services reaps all its workers.
_SHARED_REFS: dict[int, int] = {}

#: Guards lazy shard-process creation and teardown (shared or dedicated):
#: without it, two fan-out threads first-touching the same shard would each
#: fork a worker and leak one of them.
_POOLS_LOCK = threading.Lock()


def shutdown_shared_pools() -> None:
    """Shut down every shared shard process (benchmarks / test isolation)."""
    with _POOLS_LOCK:
        for pools in _SHARED_POOLS.values():
            for pool in pools:
                if pool is not None:
                    pool.shutdown(wait=True, cancel_futures=True)
        _SHARED_POOLS.clear()


# Interpreter-exit hook: reap any shared shard processes a caller forgot to
# close.  Registered after concurrent.futures' own handler, so it runs first
# (LIFO) and the pools are already down when that handler joins threads —
# no orphaned workers even when an entry point skips its try/finally.
atexit.register(shutdown_shared_pools)


class ShardedExecutor:
    """Fan plan execution out over fingerprint-hashed worker shards.

    Parameters
    ----------
    workers:
        Number of shards (one worker process each).
    dedicated:
        ``False`` (default) shares the process-global shard pools with every
        other non-dedicated executor of the same worker count; ``True``
        forks a private set that :meth:`close` tears down.

    The executor is thread-safe: submissions from concurrent threads (the
    async drainer's per-shard fan-out) interleave on the shard queues.
    """

    def __init__(self, workers: int, *, dedicated: bool = False) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._dedicated = dedicated
        self._dedicated_pools: list[ProcessPoolExecutor | None] = (
            [None] * workers if dedicated else []
        )
        self._closed = False
        if not dedicated:
            with _POOLS_LOCK:
                _SHARED_REFS[workers] = _SHARED_REFS.get(workers, 0) + 1
        # Per-shard utilisation counters (parent-side, cumulative between
        # resets).  Guarded by their own lock: the async drainer's fan-out
        # threads record concurrently.
        self._stats_lock = threading.Lock()
        self._shard_stats: list[dict] = [self._fresh_slot() for _ in range(workers)]
        # Flips to True when forking shard processes proves impossible;
        # from then on every batch runs in-process (same code, same answers).
        self._in_process = False
        # Consecutive fork failures at submit time.  A transient EAGAIN or
        # ENOMEM must not degrade the executor for good, so the in-process
        # latch only engages after repeated failures; any success resets it.
        self._fork_failures = 0

    @property
    def _pools(self) -> list[ProcessPoolExecutor | None]:
        """The live shard-pool slots.

        Shared executors look the list up in the process-global registry on
        every access (never caching it), so a ``shutdown_shared_pools()``
        call cannot orphan a still-referenced list — the next dispatch
        re-registers fresh slots that future shutdowns can reach.  The
        lookup uses the GIL-atomic ``dict.setdefault`` rather than
        ``_POOLS_LOCK``: callers already inside the (non-reentrant) lock
        evaluate this property too.
        """
        if self._dedicated:
            return self._dedicated_pools
        return _SHARED_POOLS.setdefault(self._workers, [None] * self._workers)

    @property
    def workers(self) -> int:
        """Number of shards."""
        return self._workers

    @property
    def in_process(self) -> bool:
        """True when the degraded in-process fallback is active."""
        return self._in_process

    def shard_of(self, fingerprint: str) -> int:
        """Deterministic shard index for a pool content fingerprint."""
        return int(fingerprint[:16], 16) % self._workers

    @staticmethod
    def _fresh_slot() -> dict:
        """Zeroed per-shard counter slot (the reset state)."""
        return {
            "batches": 0,
            "payloads": 0,
            "failures": 0,
            "fallback_batches": 0,
            "busy_seconds": 0.0,
            "assigned_cost": 0.0,
            "stolen": 0,
            "split_payloads": 0,
            "queue_depth": 0,
        }

    def start(self) -> "ShardedExecutor":
        """Fork every shard process now (serving startup, benchmarks).

        Shards normally start lazily on first dispatch; a serving process
        calls this once so no request pays the fork cost.  A fork-restricted
        environment degrades to in-process here like every dispatch path —
        start() never raises for it.

        ``start()`` is also the documented counter reset point: shared shard
        *processes* are refcounted across executors (and worker caches
        deliberately survive), but each ``start()`` zeroes this executor's
        per-shard utilisation counters so a measurement window (a benchmark
        config, a fresh serve session reusing warm pools) never reports a
        predecessor's load as its own.
        """
        with self._stats_lock:
            self._shard_stats = [self._fresh_slot() for _ in range(self._workers)]
        for shard in range(self._workers):
            pool = self._pool(shard)
            if pool is None:  # degraded environment: nothing to fork
                break
            try:
                pool.submit(_local_cache_stats).result()
            except (OSError, PermissionError, BrokenExecutor, CancelledError):
                # The explicit probe failing is a strong no-fork signal.
                self._in_process = True
                break
        return self

    def _pool(self, shard: int) -> ProcessPoolExecutor | None:
        """The shard's single-worker process pool, started lazily."""
        if self._in_process:
            return None
        pool = self._pools[shard]
        if pool is None:
            with _POOLS_LOCK:
                pool = self._pools[shard]  # re-check: another thread may have won
                if pool is None:
                    try:
                        pool = ProcessPoolExecutor(max_workers=1)
                    except (OSError, PermissionError):
                        self._in_process = True
                        return None
                    self._pools[shard] = pool
        return pool

    def _discard_pool(self, shard: int) -> None:
        """Drop a broken shard process; the next dispatch forks a fresh one.

        A worker dying (OOM kill, crash) must not degrade the executor
        permanently — only a genuine inability to fork
        (:attr:`in_process`) does.
        """
        with _POOLS_LOCK:
            pool = self._pools[shard]
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
                self._pools[shard] = None

    def submit_batch(
        self,
        shard: int,
        payloads: Sequence[tuple[int, PlanPayload]],
        blocks: dict[str, PoolColumns],
    ) -> Future | None:
        """Dispatch one shard batch; resolves to ``_execute_shard_batch``'s
        answer triples.  Returns ``None`` when the shard process cannot take
        the batch (unstartable, dead, or shut down) — the caller must then
        execute the batch in-process itself, which lets it finish submitting
        to the healthy shards first instead of blocking on the fallback.
        """
        pool = self._pool(shard)
        if pool is None:
            return None
        try:
            future = pool.submit(_execute_shard_batch, payloads, blocks)
        except (BrokenExecutor, RuntimeError):
            # This shard's process died (or its pool was shut down): let the
            # next dispatch refork it.
            self._discard_pool(shard)
            return None
        except (OSError, PermissionError):
            # Fork failed.  Could be transient (EAGAIN, ENOMEM) — only
            # repeated failures latch the permanent in-process fallback.
            self._discard_pool(shard)
            self._fork_failures += 1
            if self._fork_failures > self._workers + 1:
                self._in_process = True
            return None
        self._fork_failures = 0
        return future

    def run_batch(
        self,
        payloads: Sequence[tuple[int, PlanPayload]],
        blocks: dict[str, PoolColumns],
    ) -> list[tuple[int, CompactResult | BaseException, float]]:
        """Static fingerprint-hash dispatch: partition, execute, gather.

        The pre-scheduler entry point, kept as the ``hash`` oracle path:
        builds :func:`hash_units` (each shard's payloads plus the
        :class:`PoolColumns` blocks they reference, one block per distinct
        pool) and runs them with stealing off, so placement is exactly
        ``shard_of(fingerprint)``.
        """
        answers, _ = self.run_schedule(hash_units(self, payloads, blocks), steal=False)
        return answers  # type: ignore[return-value]

    def run_schedule(
        self,
        units: Sequence[WorkUnit],
        *,
        steal: bool = True,
    ) -> tuple[
        list[tuple[int, CompactResult | PartialEnumResult | BaseException, float]],
        ScheduleReport,
    ]:
        """Execute scheduled work units; gather answer triples + a report.

        Each shard's units queue heaviest-first and execute one at a time
        (its worker process is single-slot anyway), so the parent keeps
        control of placement between units.  With ``steal=True`` a shard
        whose queue drains takes the *lightest queued* unit from the
        *heaviest remaining* queue — bounding the tail when the cost model
        misjudged a unit, without thrashing the fingerprint affinity the
        queues were packed with.  Results are placement-independent (see the
        module docstring), so stealing cannot change answers — only timing.

        Unsubmittable units (dead/unstartable shard processes) fall back to
        in-process execution after every healthy shard is busy, and a worker
        dying mid-unit is covered the same way — identical answers, reforked
        on the next dispatch.
        """
        answers: list[
            tuple[int, CompactResult | PartialEnumResult | BaseException, float]
        ] = []
        report = ScheduleReport()
        if not units:
            return answers, report
        report.shards_used = len({unit.shard for unit in units})
        queues: list[deque[WorkUnit]] = [deque() for _ in range(self._workers)]
        for unit in sorted(
            units, key=lambda u: -u.cost
        ):  # heaviest first within each queue
            queues[unit.shard].append(unit)
        with self._stats_lock:
            for shard, queue in enumerate(queues):
                slot = self._shard_stats[shard]
                slot["queue_depth"] = max(slot["queue_depth"], len(queue))
        inflight: dict[Future, tuple[int, WorkUnit]] = {}
        pending_inline: list[tuple[int, WorkUnit]] = []

        def next_unit(shard: int) -> WorkUnit | None:
            """Pop the shard's next unit, stealing when its queue is empty."""
            if queues[shard]:
                return queues[shard].popleft()
            if not steal:
                return None
            donor, donor_cost = None, 0.0
            for other, queue in enumerate(queues):
                if other == shard or not queue:
                    continue
                queued_cost = sum(unit.cost for unit in queue)
                if donor is None or queued_cost > donor_cost:
                    donor, donor_cost = other, queued_cost
            if donor is None:
                return None
            unit = queues[donor].pop()  # lightest: queues are heaviest-first
            report.steals += 1
            with self._stats_lock:
                self._shard_stats[shard]["stolen"] += 1
            return unit

        def dispatch(shard: int) -> None:
            """Keep the shard busy: submit its next unit(s), deferring any
            it cannot take so healthy shards are fed first."""
            while True:
                unit = next_unit(shard)
                if unit is None:
                    return
                future = self.submit_batch(shard, unit.payloads, unit.blocks)
                if future is None:
                    pending_inline.append((shard, unit))
                    continue
                inflight[future] = (shard, unit)
                return

        for shard in range(self._workers):
            dispatch(shard)
        while inflight or pending_inline or any(queues):
            for shard, unit in pending_inline:
                unit_answers = _execute_shard_batch(unit.payloads, unit.blocks)
                self._record(shard, unit, unit_answers, fallback=True)
                report.fallback_units += 1
                answers.extend(unit_answers)
            pending_inline.clear()
            if not inflight:
                # Every queue is drained or unsubmittable; anything left
                # queued (in_process latched mid-run) executes inline.
                for shard, queue in enumerate(queues):
                    while queue:
                        pending_inline.append((shard, queue.popleft()))
                if not pending_inline:
                    break
                continue
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                shard, unit = inflight.pop(future)
                try:
                    unit_answers = future.result()
                except (OSError, BrokenExecutor, CancelledError):
                    # Worker death mid-unit, or a concurrent
                    # shutdown_shared_pools() cancelling the queued future.
                    self._discard_pool(shard)
                    unit_answers = _execute_shard_batch(unit.payloads, unit.blocks)
                    self._record(shard, unit, unit_answers, fallback=True)
                    report.fallback_units += 1
                else:
                    self._record(shard, unit, unit_answers, fallback=False)
                answers.extend(unit_answers)
                dispatch(shard)
        return answers, report

    def _record(
        self,
        shard: int,
        unit: WorkUnit,
        answers: Sequence[
            tuple[int, CompactResult | PartialEnumResult | BaseException, float]
        ],
        *,
        fallback: bool,
    ) -> None:
        """Fold one executed work unit into the utilisation counters."""
        with self._stats_lock:
            slot = self._shard_stats[shard]
            slot["fallback_batches" if fallback else "batches"] += 1
            slot["payloads"] += len(answers)
            slot["failures"] += sum(
                isinstance(answer, BaseException) for _, answer, _ in answers
            )
            slot["busy_seconds"] += sum(elapsed for _, _, elapsed in answers)
            slot["assigned_cost"] += unit.cost
            slot["split_payloads"] += sum(
                payload.split is not None for _, payload in unit.payloads
            )

    def utilisation(self) -> list[dict]:
        """Per-shard utilisation: dispatch counters plus worker liveness.

        One dict per shard — batches/payloads/failures dispatched to it,
        ``fallback_batches`` it could not take (executed in the parent
        instead), cumulative ``busy_seconds`` of worker compute,
        ``assigned_cost`` (summed scheduling weight of the units it
        executed), ``stolen`` (units it took from another shard's queue),
        ``split_payloads`` (candidate-range sub-payloads of split exact
        queries it ran), ``queue_depth`` (high-water mark of units queued
        for it in one schedule), whether a worker process is currently
        ``alive``, and its ``pids`` when started.  Counters accumulate from
        the last :meth:`start` (the reset point); they feed the
        ``scheduler`` and ``shards`` sections of the service ``stats()``
        surface, so skew is visible without touching the workers.
        """
        report = []
        with self._stats_lock:
            snapshots = [dict(slot) for slot in self._shard_stats]
        for shard, snapshot in enumerate(snapshots):
            pool = None if self._in_process else self._pools[shard]
            processes = getattr(pool, "_processes", None) or {}
            snapshot.update(
                shard=shard,
                alive=pool is not None,
                pids=sorted(processes),
            )
            report.append(snapshot)
        return report

    # ------------------------------------------------------------------
    # broadcast operations
    # ------------------------------------------------------------------
    def _broadcast(self, fn, *args) -> list:
        """Run ``fn`` once in every *started* shard process (and locally
        when the in-process fallback is active)."""
        results = []
        if self._in_process:
            return [fn(*args)]
        futures = []
        for shard in range(self._workers):
            pool = self._pools[shard]
            if pool is None:
                continue
            try:
                futures.append(pool.submit(fn, *args))
            except (BrokenExecutor, RuntimeError):
                continue
        for future in futures:
            try:
                results.append(future.result())
            except (OSError, BrokenExecutor):
                continue
        return results

    def invalidate(self, fingerprint: str) -> int:
        """Evict a fingerprint from every worker-local cache.

        Returns how many caches actually held it.  Called by the service
        layer when a registry pool is dropped, so no shard keeps dead
        profiles pinned in memory.
        """
        return sum(bool(hit) for hit in self._broadcast(_invalidate_local, fingerprint))

    def contains(self, fingerprint: str) -> list[bool]:
        """Per-started-shard presence of a fingerprint (introspection)."""
        return self._broadcast(_local_cache_contains, fingerprint)

    def cache_stats(self) -> list[dict]:
        """Worker-local cache counters of every started shard."""
        return self._broadcast(_local_cache_stats)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this executor's worker processes.

        Dedicated executors tear their private shard processes down
        immediately.  Non-dedicated executors decrement the shared-pool
        reference count for their worker count; when the *last* open
        executor of that count closes, the shared shard processes are shut
        down too (``wait=True``, so workers are reaped, not orphaned).  A
        later dispatch on some still-open executor simply re-forks lazily —
        closing is always safe, never wrong.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        with _POOLS_LOCK:
            if self._dedicated:
                for shard, pool in enumerate(self._pools):
                    if pool is not None:
                        pool.shutdown(wait=True, cancel_futures=True)
                        self._pools[shard] = None
                return
            remaining = _SHARED_REFS.get(self._workers, 1) - 1
            _SHARED_REFS[self._workers] = remaining
            if remaining > 0:
                return
            _SHARED_REFS.pop(self._workers, None)
            for pool in _SHARED_POOLS.pop(self._workers, []):
                if pool is not None:
                    pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "in-process" if self._in_process else (
            "dedicated" if self._dedicated else "shared"
        )
        return f"ShardedExecutor(workers={self._workers}, {mode})"
