"""Sharded multi-process plan execution with worker-local sweep caches.

The selection workload is embarrassingly parallel across independent queries
and pools, but one Python process can only use one core.  This module moves
*physical plan execution* — the O(N^2) prefix sweeps, the PayALG greedy, the
exact solvers — into a persistent pool of worker processes while keeping
*planning* (and therefore the deterministic operator choice) in the parent:

parent                                   worker ``s``
------                                   ------------
resolve pool, ``plan_query()``   ──►     rebuild :class:`~repro.plan.view.PoolView`
ship :class:`PlanPayload`                from the payload's columns,
(columnar eps/reqs/ids arrays,           ``execute_plan()`` with the
never pickled ``Juror`` lists)           worker-local :class:`PrefixSweepCache`

Work is partitioned by **pool fingerprint**: :meth:`ShardedExecutor.shard_of`
hashes the content fingerprint onto one of ``N`` shards, and each shard is a
dedicated single-process ``ProcessPoolExecutor`` — so the same pool always
lands on the same worker, whose local cache already holds its sweep profile.
Inside one shard batch, cache-missing AltrM pools of equal size are stacked
and swept together by :func:`repro.core.jer.batch_prefix_jer_sweep`, exactly
like the in-process batch engine.

**Bit-identity.**  Workers run the *same* ``execute_plan()`` over the same
columnar view and the same stacked sweep kernel the sequential engine uses,
and the plan (operator + backends) was fixed in the parent — so sharded
selections are bit-identical to sequential dispatch by construction, and the
oracle tests assert it.

**Shared worker pools.**  By default every :class:`ShardedExecutor` with the
same worker count shares one process-global set of shard processes (worker
caches are keyed by content fingerprint, so sharing across engines can never
serve a wrong profile; it only saves fork cost and memory).  Pass
``dedicated=True`` for a private set — tests that assert cold-cache
behaviour use this — and ``close()`` it when done.

**Degraded environments.**  Where process pools are unavailable (sandboxed /
fork-restricted containers), the executor transparently falls back to
in-process execution of the same shard batches: slower, but identical
results — nothing above this module needs to care.

**Fault-injection seam.**  With :data:`FAULT_INJECTION` switched on in the
*parent* (tests only; default off), a payload whose ``task_id`` starts with
:data:`FAULT_MARKER` is marked at planning time and makes the worker raise
the named :class:`~repro.errors.ReproError` subclass instead of executing.
The tests use it to drive every registered error class through a real
worker process and assert its wire code survives the round trip; with the
flag off (production), such task ids execute normally.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from collections.abc import Sequence
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
)
from dataclasses import dataclass

import numpy as np

from repro.core.jer import batch_prefix_jer_sweep
from repro.core.juror import Jury
from repro.core.selection.base import SelectionResult, SelectionStats
from repro.errors import ReproError
from repro.plan import SelectionPlan, execute_plan
from repro.plan.view import PoolView
from repro.service.cache import DEFAULT_CACHE_SIZE, PrefixSweepCache

__all__ = [
    "PlanPayload",
    "PoolColumns",
    "ShardedExecutor",
    "shutdown_shared_pools",
    "FAULT_MARKER",
]

#: ``task_id`` prefix that makes a worker raise instead of execute (test
#: seam; only honoured while :data:`FAULT_INJECTION` is True).  The suffix
#: names a :class:`~repro.errors.ReproError` subclass, e.g.
#: ``"__repro_fault__:InvalidJuryError"``.
FAULT_MARKER = "__repro_fault__:"

#: Master switch for the fault-injection seam, read in the *parent* when a
#: payload is built — so a production task id that happens to carry the
#: marker executes normally.  Tests flip it via ``monkeypatch.setattr``.
FAULT_INJECTION = False


@dataclass(frozen=True)
class PoolColumns:
    """One pool's shippable columns, shared by every payload targeting it.

    The pool decomposed into parallel ``eps``/``reqs``/``ids`` vectors
    (Lemma 3 order) — pickling a few float64 arrays instead of N ``Juror``
    objects, and pickling them **once per shard batch** however many
    queries of the batch hit the pool.  ``ids`` travel only when some
    referencing plan is PayM / exact — those solvers break ties on
    juror-id strings and their juries are mapped back to positions by id;
    AltrM juries are sorted prefixes, so they never need the ids.
    ``profile`` optionally carries a parent-known ``(ns, jers)`` sweep
    profile (live-pool delta repairs, parent cache hits) so the worker
    does not recompute it.
    """

    eps: np.ndarray
    reqs: np.ndarray
    ids: tuple[str, ...] | None
    fingerprint: str
    pool_id: str | None
    profile: tuple[np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_view(
        cls,
        view: PoolView,
        *,
        fingerprint: str,
        need_ids: bool,
        profile: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "PoolColumns":
        return cls(
            eps=np.asarray(view.eps),
            reqs=np.asarray(view.reqs),
            ids=view.ids if need_ids else None,
            fingerprint=fingerprint,
            pool_id=view.pool_id,
            profile=profile,
        )

    def to_view(self) -> PoolView:
        return PoolView(
            self.eps,
            self.reqs,
            ids=self.ids,
            fingerprint=self.fingerprint,
            pool_id=self.pool_id,
        )


@dataclass(frozen=True)
class PlanPayload:
    """A parent-planned query's logical fields, in shippable form.

    The pool itself travels separately as a :class:`PoolColumns` block
    (one per distinct fingerprint per shard batch); ``fingerprint`` is the
    reference that joins them back together in the worker.
    """

    task_id: str
    model: str
    operator: str
    jer_backend: str
    pmf_backend: str
    budget: float | None
    max_size: int | None
    variant: str
    method: str
    jer_tie_eps: float
    cost: object
    fingerprint: str
    #: Name of a ReproError subclass the worker must raise instead of
    #: executing — set at build time only while :data:`FAULT_INJECTION` is on.
    fault: str | None = None
    #: Compiled-kernel backend the parent's plan chose; workers honour it so
    #: a sharded query dispatches exactly like in-process execution would
    #: (defaulted so payloads pickled by older parents still inflate).
    kernel_backend: str = "numpy"

    @classmethod
    def from_plan(cls, plan: SelectionPlan, *, fingerprint: str) -> "PlanPayload":
        return cls(
            task_id=plan.task_id,
            model=plan.model,
            operator=plan.operator,
            jer_backend=plan.jer_backend,
            pmf_backend=plan.pmf_backend,
            budget=plan.budget,
            max_size=plan.max_size,
            variant=plan.variant,
            method=plan.method,
            jer_tie_eps=plan.jer_tie_eps,
            cost=plan.cost,
            fingerprint=fingerprint,
            kernel_backend=plan.kernel_backend,
            fault=(
                plan.task_id[len(FAULT_MARKER) :].split(":", 1)[0]
                if FAULT_INJECTION and plan.task_id.startswith(FAULT_MARKER)
                else None
            ),
        )

    def to_plan(self, view: PoolView) -> SelectionPlan:
        """Rebuild the executable plan around the pool's reconstructed view."""
        return SelectionPlan(
            task_id=self.task_id,
            model=self.model,
            view=view,
            budget=self.budget,
            max_size=self.max_size,
            variant=self.variant,
            method=self.method,
            operator=self.operator,
            jer_backend=self.jer_backend,
            pmf_backend=self.pmf_backend,
            kernel_backend=self.kernel_backend,
            cost=self.cost,
            jer_tie_eps=self.jer_tie_eps,
        )


@dataclass(frozen=True)
class CompactResult:
    """A worker's answer, with jury members as *positions* into the pool.

    Shipping indices instead of ``Juror`` objects keeps the return pickle a
    few dozen bytes; the parent rebuilds the :class:`SelectionResult` from
    the very ``Juror`` objects its own pool holds
    (:func:`rebuild_result`) — the same objects the sequential path would
    have put in the jury.
    """

    indices: tuple[int, ...]
    jer: float
    algorithm: str
    model: str
    budget: float | None
    stats: SelectionStats


def rebuild_result(ordered, compact: CompactResult) -> SelectionResult:
    """Inflate a :class:`CompactResult` against the parent's member tuple."""
    return SelectionResult(
        jury=Jury([ordered[i] for i in compact.indices]),
        jer=compact.jer,
        algorithm=compact.algorithm,
        model=compact.model,
        budget=compact.budget,
        stats=compact.stats,
    )


# ----------------------------------------------------------------------
# worker side (runs inside the shard processes; also reused in-process by
# the degraded-environment fallback)
# ----------------------------------------------------------------------

#: One sweep-profile cache per worker *process*, keyed by pool fingerprint.
#: Inside a real shard process access is single-threaded; the lock matters
#: for the degraded in-process fallback, where the async drainer's fan-out
#: threads execute shard batches concurrently in the parent.
_LOCAL_CACHE = PrefixSweepCache(maxsize=DEFAULT_CACHE_SIZE)
_LOCAL_CACHE_LOCK = threading.Lock()


def _reset_after_fork() -> None:
    # A worker forked while some parent thread held the cache lock (or was
    # mid-mutation under it) would inherit a locked lock and a half-written
    # cache; fresh processes start with a fresh lock and a cold cache.
    global _LOCAL_CACHE, _LOCAL_CACHE_LOCK
    _LOCAL_CACHE = PrefixSweepCache(maxsize=DEFAULT_CACHE_SIZE)
    _LOCAL_CACHE_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython >= 3.7
    os.register_at_fork(after_in_child=_reset_after_fork)


def _raise_injected_fault(name: str) -> None:
    """Raise the :class:`~repro.errors.ReproError` subclass called ``name``."""
    stack: list[type[ReproError]] = [ReproError]
    while stack:
        cls = stack.pop()
        if cls.__name__ == name:
            raise cls(f"injected fault {name}")
        stack.extend(cls.__subclasses__())
    raise ReproError(f"injected fault {name}")


def _local_profiles(
    payloads: Sequence[tuple[int, PlanPayload]],
    blocks: dict[str, PoolColumns],
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Sweep profiles for the batch's AltrM pools, via the worker cache.

    Parent-shipped profiles are adopted into the cache; remaining misses are
    grouped by pool size and swept together in stacked 2-D kernel calls —
    the same stacking the sequential engine performs, so the numbers cannot
    differ.
    """
    wanted = {p.fingerprint for _, p in payloads if p.operator == "altr-sweep"}
    profiles: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    missing: dict[str, PoolColumns] = {}
    with _LOCAL_CACHE_LOCK:
        for fingerprint in wanted:
            block = blocks[fingerprint]
            if block.profile is not None:
                profiles[fingerprint] = block.profile
                _LOCAL_CACHE.put(fingerprint, *block.profile)
                continue
            cached = _LOCAL_CACHE.get(fingerprint)
            if cached is not None:
                profiles[fingerprint] = cached
            else:
                missing[fingerprint] = block
    by_size: dict[int, list[PoolColumns]] = {}
    for block in missing.values():
        by_size.setdefault(int(block.eps.size), []).append(block)
    for group in by_size.values():
        matrix = np.stack([block.eps for block in group])
        ns, jer_matrix = batch_prefix_jer_sweep(matrix)
        with _LOCAL_CACHE_LOCK:
            for row, block in enumerate(group):
                profile = (ns, jer_matrix[row].copy())
                profiles[block.fingerprint] = profile
                _LOCAL_CACHE.put(block.fingerprint, *profile)
    return profiles


def _compact(
    payload: PlanPayload, columns: PoolColumns, result: SelectionResult
) -> CompactResult:
    """Map a jury back to pool positions (prefix for AltrM, by id otherwise)."""
    if payload.operator == "altr-sweep":
        # Lemma 3: the AltrM optimum is a prefix of the sorted pool.
        indices = tuple(range(result.size))
    else:
        position = {juror_id: i for i, juror_id in enumerate(columns.ids)}
        indices = tuple(position[j.juror_id] for j in result.jury)
    return CompactResult(
        indices=indices,
        jer=result.jer,
        algorithm=result.algorithm,
        model=result.model,
        budget=result.budget,
        stats=result.stats,
    )


def _execute_shard_batch(
    payloads: Sequence[tuple[int, PlanPayload]],
    blocks: dict[str, PoolColumns],
) -> list[tuple[int, CompactResult | BaseException, float]]:
    """Execute one shard batch; one ``(key, result | exception, elapsed)``
    triple per payload, failures captured per item so a bad query never
    poisons its shard batch."""
    profiles = _local_profiles(payloads, blocks)
    # One reconstructed view per distinct pool: queries sharing a pool also
    # share its lazily materialised Juror tuple inside the worker.
    views: dict[str, PoolView] = {}
    answers: list[tuple[int, CompactResult | BaseException, float]] = []
    for key, payload in payloads:
        start = time.perf_counter()
        try:
            if payload.fault is not None:
                _raise_injected_fault(payload.fault)
            fingerprint = payload.fingerprint
            view = views.get(fingerprint)
            if view is None:
                view = views.setdefault(fingerprint, blocks[fingerprint].to_view())
            result = execute_plan(
                payload.to_plan(view), profile=profiles.get(fingerprint)
            )
            answer: CompactResult | BaseException = _compact(
                payload, blocks[fingerprint], result
            )
        except Exception as exc:
            answer = exc
        answers.append((key, answer, time.perf_counter() - start))
    return answers


def _invalidate_local(fingerprint: str) -> bool:
    """Evict one fingerprint from this process's local sweep cache."""
    with _LOCAL_CACHE_LOCK:
        return _LOCAL_CACHE.invalidate(fingerprint)


def _local_cache_stats() -> dict:
    """This process's local cache counters (shard introspection)."""
    with _LOCAL_CACHE_LOCK:
        return {
            "entries": len(_LOCAL_CACHE),
            "hits": _LOCAL_CACHE.hits,
            "misses": _LOCAL_CACHE.misses,
            "evictions": _LOCAL_CACHE.evictions,
        }


def _local_cache_contains(fingerprint: str) -> bool:
    with _LOCAL_CACHE_LOCK:
        return fingerprint in _LOCAL_CACHE


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

#: Process-global shard pools, keyed by worker count.  Content-fingerprint
#: keying makes sharing across executors safe; it bounds the number of
#: worker processes one parent ever forks.
_SHARED_POOLS: dict[int, list[ProcessPoolExecutor | None]] = {}

#: Live (not yet closed) non-dedicated executors per worker count.  When the
#: last one of a count is closed, the shared shard processes of that count
#: are shut down too — shared pools outlive any single engine, but not every
#: engine, so a process that closes its services reaps all its workers.
_SHARED_REFS: dict[int, int] = {}

#: Guards lazy shard-process creation and teardown (shared or dedicated):
#: without it, two fan-out threads first-touching the same shard would each
#: fork a worker and leak one of them.
_POOLS_LOCK = threading.Lock()


def shutdown_shared_pools() -> None:
    """Shut down every shared shard process (benchmarks / test isolation)."""
    with _POOLS_LOCK:
        for pools in _SHARED_POOLS.values():
            for pool in pools:
                if pool is not None:
                    pool.shutdown(wait=True, cancel_futures=True)
        _SHARED_POOLS.clear()


# Interpreter-exit hook: reap any shared shard processes a caller forgot to
# close.  Registered after concurrent.futures' own handler, so it runs first
# (LIFO) and the pools are already down when that handler joins threads —
# no orphaned workers even when an entry point skips its try/finally.
atexit.register(shutdown_shared_pools)


class ShardedExecutor:
    """Fan plan execution out over fingerprint-hashed worker shards.

    Parameters
    ----------
    workers:
        Number of shards (one worker process each).
    dedicated:
        ``False`` (default) shares the process-global shard pools with every
        other non-dedicated executor of the same worker count; ``True``
        forks a private set that :meth:`close` tears down.

    The executor is thread-safe: submissions from concurrent threads (the
    async drainer's per-shard fan-out) interleave on the shard queues.
    """

    def __init__(self, workers: int, *, dedicated: bool = False) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._dedicated = dedicated
        self._dedicated_pools: list[ProcessPoolExecutor | None] = (
            [None] * workers if dedicated else []
        )
        self._closed = False
        if not dedicated:
            with _POOLS_LOCK:
                _SHARED_REFS[workers] = _SHARED_REFS.get(workers, 0) + 1
        # Per-shard utilisation counters (parent-side, cumulative).  Guarded
        # by their own lock: the async drainer's fan-out threads record
        # concurrently.
        self._stats_lock = threading.Lock()
        self._shard_stats: list[dict] = [
            {
                "batches": 0,
                "payloads": 0,
                "failures": 0,
                "fallback_batches": 0,
                "busy_seconds": 0.0,
            }
            for _ in range(workers)
        ]
        # Flips to True when forking shard processes proves impossible;
        # from then on every batch runs in-process (same code, same answers).
        self._in_process = False
        # Consecutive fork failures at submit time.  A transient EAGAIN or
        # ENOMEM must not degrade the executor for good, so the in-process
        # latch only engages after repeated failures; any success resets it.
        self._fork_failures = 0

    @property
    def _pools(self) -> list[ProcessPoolExecutor | None]:
        """The live shard-pool slots.

        Shared executors look the list up in the process-global registry on
        every access (never caching it), so a ``shutdown_shared_pools()``
        call cannot orphan a still-referenced list — the next dispatch
        re-registers fresh slots that future shutdowns can reach.  The
        lookup uses the GIL-atomic ``dict.setdefault`` rather than
        ``_POOLS_LOCK``: callers already inside the (non-reentrant) lock
        evaluate this property too.
        """
        if self._dedicated:
            return self._dedicated_pools
        return _SHARED_POOLS.setdefault(self._workers, [None] * self._workers)

    @property
    def workers(self) -> int:
        """Number of shards."""
        return self._workers

    @property
    def in_process(self) -> bool:
        """True when the degraded in-process fallback is active."""
        return self._in_process

    def shard_of(self, fingerprint: str) -> int:
        """Deterministic shard index for a pool content fingerprint."""
        return int(fingerprint[:16], 16) % self._workers

    def start(self) -> "ShardedExecutor":
        """Fork every shard process now (serving startup, benchmarks).

        Shards normally start lazily on first dispatch; a serving process
        calls this once so no request pays the fork cost.  A fork-restricted
        environment degrades to in-process here like every dispatch path —
        start() never raises for it.
        """
        for shard in range(self._workers):
            pool = self._pool(shard)
            if pool is None:  # degraded environment: nothing to fork
                break
            try:
                pool.submit(_local_cache_stats).result()
            except (OSError, PermissionError, BrokenExecutor, CancelledError):
                # The explicit probe failing is a strong no-fork signal.
                self._in_process = True
                break
        return self

    def _pool(self, shard: int) -> ProcessPoolExecutor | None:
        """The shard's single-worker process pool, started lazily."""
        if self._in_process:
            return None
        pool = self._pools[shard]
        if pool is None:
            with _POOLS_LOCK:
                pool = self._pools[shard]  # re-check: another thread may have won
                if pool is None:
                    try:
                        pool = ProcessPoolExecutor(max_workers=1)
                    except (OSError, PermissionError):
                        self._in_process = True
                        return None
                    self._pools[shard] = pool
        return pool

    def _discard_pool(self, shard: int) -> None:
        """Drop a broken shard process; the next dispatch forks a fresh one.

        A worker dying (OOM kill, crash) must not degrade the executor
        permanently — only a genuine inability to fork
        (:attr:`in_process`) does.
        """
        with _POOLS_LOCK:
            pool = self._pools[shard]
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
                self._pools[shard] = None

    def submit_batch(
        self,
        shard: int,
        payloads: Sequence[tuple[int, PlanPayload]],
        blocks: dict[str, PoolColumns],
    ) -> Future | None:
        """Dispatch one shard batch; resolves to ``_execute_shard_batch``'s
        answer triples.  Returns ``None`` when the shard process cannot take
        the batch (unstartable, dead, or shut down) — the caller must then
        execute the batch in-process itself, which lets it finish submitting
        to the healthy shards first instead of blocking on the fallback.
        """
        pool = self._pool(shard)
        if pool is None:
            return None
        try:
            future = pool.submit(_execute_shard_batch, payloads, blocks)
        except (BrokenExecutor, RuntimeError):
            # This shard's process died (or its pool was shut down): let the
            # next dispatch refork it.
            self._discard_pool(shard)
            return None
        except (OSError, PermissionError):
            # Fork failed.  Could be transient (EAGAIN, ENOMEM) — only
            # repeated failures latch the permanent in-process fallback.
            self._discard_pool(shard)
            self._fork_failures += 1
            if self._fork_failures > self._workers + 1:
                self._in_process = True
            return None
        self._fork_failures = 0
        return future

    def run_batch(
        self,
        payloads: Sequence[tuple[int, PlanPayload]],
        blocks: dict[str, PoolColumns],
    ) -> list[tuple[int, CompactResult | BaseException, float]]:
        """Partition payloads by fingerprint shard, execute, gather.

        Each shard receives its payloads plus the :class:`PoolColumns`
        blocks they reference — one block per distinct pool, however many
        queries target it.  Submits every shard batch before computing any
        in-process fallbacks or waiting, so healthy shards compute
        concurrently even while a dead one is covered in-process; a shard
        whose process died mid-batch is likewise re-executed in-process
        (same payloads, same answers) and reforked on the next dispatch.
        """
        groups: dict[int, list[tuple[int, PlanPayload]]] = {}
        for key, payload in payloads:
            groups.setdefault(self.shard_of(payload.fingerprint), []).append(
                (key, payload)
            )
        futures = []
        deferred = []
        for shard, batch in groups.items():
            shard_blocks = {
                payload.fingerprint: blocks[payload.fingerprint]
                for _, payload in batch
            }
            future = self.submit_batch(shard, batch, shard_blocks)
            if future is None:
                deferred.append((shard, batch, shard_blocks))
            else:
                futures.append((shard, batch, shard_blocks, future))
        answers: list[tuple[int, CompactResult | BaseException, float]] = []
        for shard, batch, shard_blocks in deferred:
            shard_answers = _execute_shard_batch(batch, shard_blocks)
            self._record(shard, shard_answers, fallback=True)
            answers.extend(shard_answers)
        for shard, batch, shard_blocks, future in futures:
            try:
                shard_answers = future.result()
            except (OSError, BrokenExecutor, CancelledError):
                # Worker death mid-batch, or a concurrent
                # shutdown_shared_pools() cancelling the queued future.
                self._discard_pool(shard)
                shard_answers = _execute_shard_batch(batch, shard_blocks)
                self._record(shard, shard_answers, fallback=True)
            else:
                self._record(shard, shard_answers, fallback=False)
            answers.extend(shard_answers)
        return answers

    def _record(
        self,
        shard: int,
        answers: Sequence[tuple[int, CompactResult | BaseException, float]],
        *,
        fallback: bool,
    ) -> None:
        """Fold one executed shard batch into the utilisation counters."""
        with self._stats_lock:
            slot = self._shard_stats[shard]
            slot["fallback_batches" if fallback else "batches"] += 1
            slot["payloads"] += len(answers)
            slot["failures"] += sum(
                isinstance(answer, BaseException) for _, answer, _ in answers
            )
            slot["busy_seconds"] += sum(elapsed for _, _, elapsed in answers)

    def utilisation(self) -> list[dict]:
        """Per-shard utilisation: dispatch counters plus worker liveness.

        One dict per shard — batches/payloads/failures dispatched to it,
        ``fallback_batches`` it could not take (executed in the parent
        instead), cumulative ``busy_seconds`` of worker compute, whether a
        worker process is currently ``alive``, and its ``pids`` when
        started.  Feeds the ``shards`` section of the service ``stats()``
        surface, so a load balancer (or the cost-aware scheduler the
        ROADMAP plans) can see skew without touching the workers.
        """
        report = []
        with self._stats_lock:
            snapshots = [dict(slot) for slot in self._shard_stats]
        for shard, snapshot in enumerate(snapshots):
            pool = None if self._in_process else self._pools[shard]
            processes = getattr(pool, "_processes", None) or {}
            snapshot.update(
                shard=shard,
                alive=pool is not None,
                pids=sorted(processes),
            )
            report.append(snapshot)
        return report

    # ------------------------------------------------------------------
    # broadcast operations
    # ------------------------------------------------------------------
    def _broadcast(self, fn, *args) -> list:
        """Run ``fn`` once in every *started* shard process (and locally
        when the in-process fallback is active)."""
        results = []
        if self._in_process:
            return [fn(*args)]
        futures = []
        for shard in range(self._workers):
            pool = self._pools[shard]
            if pool is None:
                continue
            try:
                futures.append(pool.submit(fn, *args))
            except (BrokenExecutor, RuntimeError):
                continue
        for future in futures:
            try:
                results.append(future.result())
            except (OSError, BrokenExecutor):
                continue
        return results

    def invalidate(self, fingerprint: str) -> int:
        """Evict a fingerprint from every worker-local cache.

        Returns how many caches actually held it.  Called by the service
        layer when a registry pool is dropped, so no shard keeps dead
        profiles pinned in memory.
        """
        return sum(bool(hit) for hit in self._broadcast(_invalidate_local, fingerprint))

    def contains(self, fingerprint: str) -> list[bool]:
        """Per-started-shard presence of a fingerprint (introspection)."""
        return self._broadcast(_local_cache_contains, fingerprint)

    def cache_stats(self) -> list[dict]:
        """Worker-local cache counters of every started shard."""
        return self._broadcast(_local_cache_stats)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this executor's worker processes.

        Dedicated executors tear their private shard processes down
        immediately.  Non-dedicated executors decrement the shared-pool
        reference count for their worker count; when the *last* open
        executor of that count closes, the shared shard processes are shut
        down too (``wait=True``, so workers are reaped, not orphaned).  A
        later dispatch on some still-open executor simply re-forks lazily —
        closing is always safe, never wrong.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        with _POOLS_LOCK:
            if self._dedicated:
                for shard, pool in enumerate(self._pools):
                    if pool is not None:
                        pool.shutdown(wait=True, cancel_futures=True)
                        self._pools[shard] = None
                return
            remaining = _SHARED_REFS.get(self._workers, 1) - 1
            _SHARED_REFS[self._workers] = remaining
            if remaining > 0:
                return
            _SHARED_REFS.pop(self._workers, None)
            for pool in _SHARED_POOLS.pop(self._workers, []):
                if pool is not None:
                    pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "in-process" if self._in_process else (
            "dedicated" if self._dedicated else "shared"
        )
        return f"ShardedExecutor(workers={self._workers}, {mode})"
