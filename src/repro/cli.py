"""``repro-select`` — jury selection from the command line.

Single-query mode reads a CSV of candidate jurors and prints the selected
jury:

    repro-select candidates.csv                          # AltrM optimum
    repro-select candidates.csv --budget 1.0             # PayALG greedy
    repro-select candidates.csv --budget 1.0 --exact     # exact optimum
    repro-select candidates.csv --json                   # machine-readable

CSV format: a header line followed by ``id,error_rate[,requirement]`` rows.
The requirement column is optional and defaults to 0 (altruistic jurors).

Batch mode answers many selection queries in one pass through the
:class:`~repro.service.BatchSelectionEngine` (vectorized sweeps, shared-pool
caching, optional process pool for exact queries):

    repro-select batch queries.jsonl                     # JSONL to stdout
    repro-select batch queries.jsonl --out results.jsonl
    repro-select batch queries.jsonl --workers 4         # parallel exact

Batch input is JSON Lines; blank lines and ``#`` comments are skipped.
A row *without* a ``"task"`` key defines a named shared pool:

    {"pool": "P1", "candidates": [{"id": "A", "error_rate": 0.1,
                                   "requirement": 0.2}, ...]}

A row *with* a ``"task"`` key is a query, drawing candidates either from a
previously defined pool (``"pool": "P1"``) or inline (``"candidates"``):

    {"task": "t1", "pool": "P1"}
    {"task": "t2", "pool": "P1", "model": "pay", "budget": 1.0}
    {"task": "t3", "candidates": [...], "model": "exact", "max_size": 7}

Supported query fields: ``model`` (``altr``/``pay``/``exact``, default
``altr``), ``budget``, ``max_size``, ``variant`` (PayALG), ``method``
(exact solver).  One output row is emitted per query row, in input order:
``status: "ok"`` rows carry the selection, ``status: "error"`` rows carry
the per-row diagnostic (also echoed to stderr as ``file:line: message``).
Exit codes: 0 — all queries succeeded; 1 — fatal (unreadable input, no
query rows); 2 — completed, but some rows were malformed or failed.

``batch`` is a reserved word in the first argument position; to select
from a CSV file literally named ``batch``, pass it as ``./batch``.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.core.juror import Juror
from repro.core.selection.altr import select_jury_altr
from repro.core.selection.base import SelectionResult
from repro.core.selection.exact import select_jury_optimal
from repro.core.selection.pay import select_jury_pay
from repro.errors import ReproError
from repro.service import BatchSelectionEngine, CandidatePool, SelectionQuery

__all__ = ["load_candidates_csv", "main"]


def load_candidates_csv(path: str | Path) -> list[Juror]:
    """Parse a candidates CSV into jurors.

    Expects a header containing ``id`` and ``error_rate`` columns and an
    optional ``requirement`` column; extra columns are ignored.
    """
    source = Path(path)
    jurors: list[Juror] = []
    with source.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ReproError(f"{source}: empty CSV")
        fields = {name.strip().lower() for name in reader.fieldnames}
        if "id" not in fields or "error_rate" not in fields:
            raise ReproError(
                f"{source}: header must contain 'id' and 'error_rate' columns, "
                f"got {sorted(fields)}"
            )
        for row_number, row in enumerate(reader, start=2):
            normalised = {k.strip().lower(): v for k, v in row.items() if k}
            try:
                jurors.append(
                    Juror(
                        float(normalised["error_rate"]),
                        float(normalised.get("requirement") or 0.0),
                        juror_id=normalised["id"].strip(),
                    )
                )
            except (KeyError, TypeError, ValueError, ReproError) as exc:
                raise ReproError(f"{source}:{row_number}: bad candidate row: {exc}") from exc
    if not jurors:
        raise ReproError(f"{source}: no candidate rows")
    return jurors


def _render_text(result: SelectionResult) -> str:
    lines = [result.summary(), "members:"]
    for juror in sorted(result.jury, key=lambda j: j.error_rate):
        lines.append(
            f"  {juror.juror_id}: eps={juror.error_rate:.6g}, "
            f"r={juror.requirement:.6g}"
        )
    return "\n".join(lines)


def _render_json(result: SelectionResult) -> str:
    return json.dumps(
        {
            "algorithm": result.algorithm,
            "model": result.model,
            "budget": result.budget,
            "jer": result.jer,
            "size": result.size,
            "total_cost": result.total_cost,
            "members": [
                {
                    "id": j.juror_id,
                    "error_rate": j.error_rate,
                    "requirement": j.requirement,
                }
                for j in result.jury
            ],
        },
        indent=2,
    )


# ----------------------------------------------------------------------
# batch subcommand
# ----------------------------------------------------------------------

_QUERY_MODELS = ("altr", "pay", "exact")


def _parse_candidates_json(value: object, where: str) -> list[Juror]:
    """Parse a JSON ``candidates`` array into jurors, with located errors."""
    if not isinstance(value, list) or not value:
        raise ReproError(f"{where}: 'candidates' must be a non-empty array")
    jurors: list[Juror] = []
    for position, entry in enumerate(value):
        if not isinstance(entry, dict):
            raise ReproError(
                f"{where}: candidate #{position} must be an object, "
                f"got {type(entry).__name__}"
            )
        try:
            jurors.append(
                Juror(
                    float(entry["error_rate"]),
                    float(entry.get("requirement", 0.0)),
                    juror_id=str(entry["id"]),
                )
            )
        except KeyError as exc:
            raise ReproError(
                f"{where}: candidate #{position} is missing field {exc}"
            ) from exc
        except (TypeError, ValueError, ReproError) as exc:
            raise ReproError(f"{where}: candidate #{position}: {exc}") from exc
    return jurors


def _query_from_row(
    obj: dict, where: str, pools: dict[str, CandidatePool]
) -> SelectionQuery:
    """Build a :class:`SelectionQuery` from one parsed JSONL query row."""
    task_id = str(obj["task"])
    model = obj.get("model", "altr")
    if model not in _QUERY_MODELS:
        raise ReproError(
            f"{where}: unknown model {model!r}; expected one of {_QUERY_MODELS}"
        )
    pool: CandidatePool | None = None
    candidates: tuple[Juror, ...] | None = None
    if "pool" in obj and "candidates" in obj:
        raise ReproError(f"{where}: give either 'pool' or 'candidates', not both")
    if "pool" in obj:
        pool_name = str(obj["pool"])
        pool = pools.get(pool_name)
        if pool is None:
            raise ReproError(f"{where}: query references undefined pool {pool_name!r}")
    elif "candidates" in obj:
        candidates = tuple(_parse_candidates_json(obj["candidates"], where))
    else:
        raise ReproError(f"{where}: query needs a 'pool' reference or inline 'candidates'")
    budget = obj.get("budget")
    max_size = obj.get("max_size")
    try:
        return SelectionQuery(
            task_id=task_id,
            candidates=candidates,
            pool=pool,
            model=model,
            budget=None if budget is None else float(budget),
            max_size=None if max_size is None else int(max_size),
            variant=str(obj.get("variant", "paper")),
            method=str(obj.get("method", "auto")),
        )
    except (TypeError, ValueError) as exc:
        raise ReproError(f"{where}: {exc}") from exc


def _batch_ok_row(task_id: str, result: SelectionResult) -> dict:
    return {
        "task": task_id,
        "status": "ok",
        "model": result.model,
        "algorithm": result.algorithm,
        "jer": result.jer,
        "size": result.size,
        "total_cost": result.total_cost,
        "budget": result.budget,
        "members": [
            {
                "id": j.juror_id,
                "error_rate": j.error_rate,
                "requirement": j.requirement,
            }
            for j in result.jury
        ],
    }


def _batch_error_row(task_id: str | None, line: int | None, message: str) -> dict:
    return {"task": task_id, "status": "error", "line": line, "error": message}


def run_batch(args: argparse.Namespace) -> int:
    """Execute the ``batch`` subcommand.  Returns a process exit code."""
    source = Path(args.input)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    pools: dict[str, CandidatePool] = {}
    queries: list[SelectionQuery] = []
    query_lines: list[int] = []  # input line of each query, for diagnostics
    # Output slots in input order: ("query", query_index) or a finished error row.
    slots: list[tuple[str, object]] = []
    had_row_errors = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        where = f"{source}:{line_no}"
        try:
            obj = json.loads(stripped)
            if not isinstance(obj, dict):
                raise ReproError(f"{where}: row must be a JSON object")
        except json.JSONDecodeError as exc:
            print(f"{where}: invalid JSON: {exc.msg}", file=sys.stderr)
            slots.append(("error", _batch_error_row(None, line_no, f"invalid JSON: {exc.msg}")))
            had_row_errors = True
            continue
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            slots.append(("error", _batch_error_row(None, line_no, str(exc))))
            had_row_errors = True
            continue

        if "task" not in obj:
            # Pool-definition row.
            try:
                if "pool" not in obj or "candidates" not in obj:
                    raise ReproError(
                        f"{where}: row without 'task' must define a pool "
                        "('pool' + 'candidates')"
                    )
                name = str(obj["pool"])
                pools[name] = CandidatePool(
                    _parse_candidates_json(obj["candidates"], where), pool_id=name
                )
            except ReproError as exc:
                print(str(exc), file=sys.stderr)
                slots.append(("error", _batch_error_row(None, line_no, str(exc))))
                had_row_errors = True
            continue

        try:
            query = _query_from_row(obj, where, pools)
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            task = str(obj["task"]) if "task" in obj else None
            slots.append(("error", _batch_error_row(task, line_no, str(exc))))
            had_row_errors = True
            continue
        slots.append(("query", len(queries)))
        queries.append(query)
        query_lines.append(line_no)

    if not queries and not had_row_errors:
        print(f"error: {source}: no query rows", file=sys.stderr)
        return 1

    engine = BatchSelectionEngine(max_workers=args.workers)
    outcomes = engine.run(queries)

    rows: list[dict] = []
    for kind, payload in slots:
        if kind == "error":
            rows.append(payload)  # type: ignore[arg-type]
            continue
        outcome = outcomes[payload]  # type: ignore[index]
        if outcome.ok:
            rows.append(_batch_ok_row(outcome.task_id, outcome.result))
        else:
            had_row_errors = True
            line_no = query_lines[payload]  # type: ignore[index]
            print(
                f"{source}:{line_no}: task {outcome.task_id!r}: {outcome.error}",
                file=sys.stderr,
            )
            rows.append(
                _batch_error_row(outcome.task_id, line_no, outcome.error or "failed")
            )

    rendered = "\n".join(json.dumps(row) for row in rows)
    if args.out is None:
        print(rendered)
    else:
        try:
            Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 2 if had_row_errors else 0


def _build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-select batch",
        description="Answer many jury-selection queries from a JSONL file "
        "through the batch engine (shared pools are swept once).",
    )
    parser.add_argument(
        "input",
        help="JSONL file: pool rows ({'pool','candidates'}) and query rows "
        "({'task', 'pool'|'candidates', 'model', ...})",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write result JSONL here instead of stdout",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for exact queries (default: in-process)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "batch":
        return run_batch(_build_batch_parser().parse_args(arguments[1:]))

    parser = argparse.ArgumentParser(
        prog="repro-select",
        description="Select the minimum-JER jury from a CSV of candidates "
        "(Cao et al., VLDB 2012).  See 'repro-select batch --help' for the "
        "batched JSONL mode.",
    )
    parser.add_argument("csv", help="candidates CSV: id,error_rate[,requirement]")
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="PayM budget; omit for the altruistic (AltrM) model",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="use the exact optimum (enumeration / branch-and-bound) instead "
        "of the greedy PayALG; only meaningful with --budget",
    )
    parser.add_argument(
        "--variant",
        choices=("paper", "improved"),
        default="paper",
        help="PayALG variant (default: paper)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    args = parser.parse_args(arguments)

    try:
        candidates = load_candidates_csv(args.csv)
        if args.budget is None:
            result = select_jury_altr(candidates)
        elif args.exact:
            result = select_jury_optimal(candidates, budget=args.budget)
        else:
            result = select_jury_pay(
                candidates, budget=args.budget, variant=args.variant
            )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(_render_json(result) if args.json else _render_text(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
