"""``repro-select`` — jury selection from the command line.

Single-query mode reads a CSV of candidate jurors and prints the selected
jury:

    repro-select candidates.csv                          # AltrM optimum
    repro-select candidates.csv --budget 1.0             # PayALG greedy
    repro-select candidates.csv --budget 1.0 --exact     # exact optimum
    repro-select candidates.csv --json                   # machine-readable

CSV format: a header line followed by ``id,error_rate[,requirement]`` rows.
The requirement column is optional and defaults to 0 (altruistic jurors).

Explain mode plans a query through the same ``plan_query()`` front door the
selection paths execute through, and prints the chosen physical plan —
operator, numeric backends, cost-model inputs — *without* executing it:

    repro-select explain candidates.csv --budget 1.0
    repro-select explain candidates.csv --exact --json

Batch mode answers many selection queries in one pass through the
:class:`~repro.service.BatchSelectionEngine` (vectorized sweeps, shared-pool
caching, optional process pool for exact queries):

    repro-select batch queries.jsonl                     # JSONL to stdout
    repro-select batch queries.jsonl --out results.jsonl
    repro-select batch queries.jsonl --workers 4         # parallel exact

Batch input is JSON Lines; blank lines and ``#`` comments are skipped.
A row *without* a ``"task"`` key defines a named shared pool:

    {"pool": "P1", "candidates": [{"id": "A", "error_rate": 0.1,
                                   "requirement": 0.2}, ...]}

A row *with* a ``"task"`` key is a query, drawing candidates either from a
previously defined pool (``"pool": "P1"``) or inline (``"candidates"``):

    {"task": "t1", "pool": "P1"}
    {"task": "t2", "pool": "P1", "model": "pay", "budget": 1.0}
    {"task": "t3", "candidates": [...], "model": "exact", "max_size": 7}

Supported query fields: ``model`` (``altr``/``pay``/``exact``, default
``altr``), ``budget``, ``max_size``, ``variant`` (PayALG), ``method``
(exact solver), and ``"explain": true`` — which emits the query's physical
plan instead of executing it.  One output row is emitted per query row, in
input order:
``status: "ok"`` rows carry the selection, ``status: "error"`` rows carry
the per-row diagnostic (also echoed to stderr as ``file:line: message``).
Exit codes: 0 — all queries succeeded; 1 — fatal (unreadable input, no
query rows); 2 — completed, but some rows were malformed or failed.

Serve mode keeps a long-lived session on stdin/stdout, backed by a
:class:`~repro.service.PoolRegistry` of live pools so that pool mutations
and selections interleave without resweeping unchanged state:

    repro-select serve                                   # JSONL in, JSONL out

One JSON command per input line; one JSON response per command, flushed
immediately.  Commands:

    {"cmd": "pool", "action": "create", "name": "P1", "candidates": [...]}
    {"cmd": "pool", "action": "update", "name": "P1",
     "add": [...], "remove": ["id", ...],
     "set": [{"id": "A", "error_rate": 0.25, "requirement": 0.4}, ...]}
    {"cmd": "pool", "action": "drop", "name": "P1"}
    {"cmd": "select", "task": "t1", "pool": "P1", "model": "altr", ...}
    {"cmd": "stats"}
    {"cmd": "quit"}

Pool responses echo ``{"ok": true, "name", "version", "size"}`` (versions
increase monotonically, one per mutation); ``select`` responses carry the
same fields as batch-mode ok rows plus ``pool_version``; a ``select`` may
also use inline ``"candidates"`` instead of a pool name.  Errors are
reported as ``{"ok": false, "line": N, "error": msg}`` without ending the
session.  The session ends at EOF or ``quit``; the exit code is 0 when
every command succeeded, 2 otherwise.

``batch``, ``serve`` and ``explain`` are reserved words in the first
argument position; to select from a CSV file with one of those names, pass
it as ``./batch``.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.core.juror import Juror
from repro.core.selection.base import SelectionResult
from repro.errors import ReproError
from repro.plan import SelectionPlan, execute_plan, plan_query
from repro.service import (
    BatchSelectionEngine,
    CandidatePool,
    PoolRegistry,
    SelectionQuery,
)

__all__ = ["load_candidates_csv", "main", "run_explain", "run_serve"]


def load_candidates_csv(path: str | Path) -> list[Juror]:
    """Parse a candidates CSV into jurors.

    Expects a header containing ``id`` and ``error_rate`` columns and an
    optional ``requirement`` column; extra columns are ignored.
    """
    source = Path(path)
    jurors: list[Juror] = []
    with source.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ReproError(f"{source}: empty CSV")
        fields = {name.strip().lower() for name in reader.fieldnames}
        if "id" not in fields or "error_rate" not in fields:
            raise ReproError(
                f"{source}: header must contain 'id' and 'error_rate' columns, "
                f"got {sorted(fields)}"
            )
        for row_number, row in enumerate(reader, start=2):
            normalised = {k.strip().lower(): v for k, v in row.items() if k}
            try:
                jurors.append(
                    Juror(
                        float(normalised["error_rate"]),
                        float(normalised.get("requirement") or 0.0),
                        juror_id=normalised["id"].strip(),
                    )
                )
            except (KeyError, TypeError, ValueError, ReproError) as exc:
                raise ReproError(f"{source}:{row_number}: bad candidate row: {exc}") from exc
    if not jurors:
        raise ReproError(f"{source}: no candidate rows")
    return jurors


def _render_text(result: SelectionResult) -> str:
    lines = [result.summary(), "members:"]
    for juror in sorted(result.jury, key=lambda j: j.error_rate):
        lines.append(
            f"  {juror.juror_id}: eps={juror.error_rate:.6g}, "
            f"r={juror.requirement:.6g}"
        )
    return "\n".join(lines)


def _render_plan_text(plan: SelectionPlan) -> str:
    """Human-readable EXPLAIN rendering of a selection plan."""
    info = plan.describe()
    cost = info["cost"]
    lines = [
        f"model: {info['model']}",
        f"pool_size: {info['pool_size']}",
        f"operator: {info['operator']}",
        f"jer_backend: {info['jer_backend']}",
        f"pmf_backend: {info['pmf_backend']}",
    ]
    if info["budget"] is not None:
        lines.append(f"budget: {info['budget']:g}")
        lines.append(f"affordable: {cost['affordable']}")
        lines.append(f"budget_tightness: {cost['budget_tightness']:.3f}")
    if info["max_size"] is not None:
        lines.append(f"max_size: {info['max_size']}")
    if info["variant"] is not None:
        lines.append(f"variant: {info['variant']}")
    if info["method"] is not None:
        lines.append(f"method: {info['method']}")
    lines.append("estimates:")
    for entry in cost["estimates"]:
        lines.append(f"  {entry['operator']}: ~{entry['ops']:.3g} ops")
    return "\n".join(lines)


def _render_json(result: SelectionResult) -> str:
    return json.dumps(
        {
            "algorithm": result.algorithm,
            "model": result.model,
            "budget": result.budget,
            "jer": result.jer,
            "size": result.size,
            "total_cost": result.total_cost,
            "members": [
                {
                    "id": j.juror_id,
                    "error_rate": j.error_rate,
                    "requirement": j.requirement,
                }
                for j in result.jury
            ],
        },
        indent=2,
    )


# ----------------------------------------------------------------------
# batch subcommand
# ----------------------------------------------------------------------


def _parse_candidates_json(value: object, where: str) -> list[Juror]:
    """Parse a JSON ``candidates`` array into jurors, with located errors."""
    if not isinstance(value, list) or not value:
        raise ReproError(f"{where}: 'candidates' must be a non-empty array")
    jurors: list[Juror] = []
    for position, entry in enumerate(value):
        if not isinstance(entry, dict):
            raise ReproError(
                f"{where}: candidate #{position} must be an object, "
                f"got {type(entry).__name__}"
            )
        try:
            jurors.append(
                Juror(
                    float(entry["error_rate"]),
                    float(entry.get("requirement", 0.0)),
                    juror_id=str(entry["id"]),
                )
            )
        except KeyError as exc:
            raise ReproError(
                f"{where}: candidate #{position} is missing field {exc}"
            ) from exc
        except (TypeError, ValueError, ReproError) as exc:
            raise ReproError(f"{where}: candidate #{position}: {exc}") from exc
    return jurors


def _build_query(
    obj: dict,
    where: str,
    *,
    pool: CandidatePool | None = None,
    pool_name: str | None = None,
    candidates: tuple[Juror, ...] | None = None,
) -> SelectionQuery:
    """Build a :class:`SelectionQuery` from a parsed JSON row.

    Shared by batch mode (which passes a resolved ``pool`` or inline
    ``candidates``) and serve mode (which passes a registry ``pool_name``);
    coerces the common optional fields in one place.  Model strings are
    parsed by the plan layer (:func:`repro.plan.normalize_model`, via
    ``SelectionQuery``), so aliases like ``AltrM``/``PayM`` are accepted
    and unknown models raise a located error.
    """
    model = obj.get("model", "altr")
    budget = obj.get("budget")
    max_size = obj.get("max_size")
    try:
        return SelectionQuery(
            task_id=str(obj.get("task", "task")),
            candidates=candidates,
            pool=pool,
            pool_name=pool_name,
            model=model,
            budget=None if budget is None else float(budget),
            max_size=None if max_size is None else int(max_size),
            variant=str(obj.get("variant", "paper")),
            method=str(obj.get("method", "auto")),
        )
    except (TypeError, ValueError) as exc:
        raise ReproError(f"{where}: {exc}") from exc


def _query_from_row(
    obj: dict, where: str, pools: dict[str, CandidatePool]
) -> SelectionQuery:
    """Build a :class:`SelectionQuery` from one parsed JSONL query row."""
    pool: CandidatePool | None = None
    candidates: tuple[Juror, ...] | None = None
    if "pool" in obj and "candidates" in obj:
        raise ReproError(f"{where}: give either 'pool' or 'candidates', not both")
    if "pool" in obj:
        pool_name = str(obj["pool"])
        pool = pools.get(pool_name)
        if pool is None:
            raise ReproError(f"{where}: query references undefined pool {pool_name!r}")
    elif "candidates" in obj:
        candidates = tuple(_parse_candidates_json(obj["candidates"], where))
    else:
        raise ReproError(f"{where}: query needs a 'pool' reference or inline 'candidates'")
    return _build_query(obj, where, pool=pool, candidates=candidates)


def _batch_ok_row(task_id: str, result: SelectionResult) -> dict:
    return {
        "task": task_id,
        "status": "ok",
        "model": result.model,
        "algorithm": result.algorithm,
        "jer": result.jer,
        "size": result.size,
        "total_cost": result.total_cost,
        "budget": result.budget,
        "members": [
            {
                "id": j.juror_id,
                "error_rate": j.error_rate,
                "requirement": j.requirement,
            }
            for j in result.jury
        ],
    }


def _batch_error_row(task_id: str | None, line: int | None, message: str) -> dict:
    return {"task": task_id, "status": "error", "line": line, "error": message}


def run_batch(args: argparse.Namespace) -> int:
    """Execute the ``batch`` subcommand.  Returns a process exit code."""
    source = Path(args.input)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    pools: dict[str, CandidatePool] = {}
    queries: list[SelectionQuery] = []
    query_lines: list[int] = []  # input line of each query, for diagnostics
    # Output slots in input order: ("query", query_index) or a finished error row.
    slots: list[tuple[str, object]] = []
    had_row_errors = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        where = f"{source}:{line_no}"
        try:
            obj = json.loads(stripped)
            if not isinstance(obj, dict):
                raise ReproError(f"{where}: row must be a JSON object")
        except json.JSONDecodeError as exc:
            print(f"{where}: invalid JSON: {exc.msg}", file=sys.stderr)
            slots.append(("error", _batch_error_row(None, line_no, f"invalid JSON: {exc.msg}")))
            had_row_errors = True
            continue
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            slots.append(("error", _batch_error_row(None, line_no, str(exc))))
            had_row_errors = True
            continue

        if "task" not in obj:
            # Pool-definition row.
            try:
                if "pool" not in obj or "candidates" not in obj:
                    raise ReproError(
                        f"{where}: row without 'task' must define a pool "
                        "('pool' + 'candidates')"
                    )
                name = str(obj["pool"])
                pools[name] = CandidatePool(
                    _parse_candidates_json(obj["candidates"], where), pool_id=name
                )
            except ReproError as exc:
                print(str(exc), file=sys.stderr)
                slots.append(("error", _batch_error_row(None, line_no, str(exc))))
                had_row_errors = True
            continue

        try:
            query = _query_from_row(obj, where, pools)
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            task = str(obj["task"]) if "task" in obj else None
            slots.append(("error", _batch_error_row(task, line_no, str(exc))))
            had_row_errors = True
            continue
        if obj.get("explain"):
            slots.append(("explain", (query, line_no)))
            continue
        slots.append(("query", len(queries)))
        queries.append(query)
        query_lines.append(line_no)

    have_rows = queries or any(kind == "explain" for kind, _ in slots)
    if not have_rows and not had_row_errors:
        print(f"error: {source}: no query rows", file=sys.stderr)
        return 1

    engine = BatchSelectionEngine(max_workers=args.workers)
    outcomes = engine.run(queries)

    rows: list[dict] = []
    for kind, payload in slots:
        if kind == "error":
            rows.append(payload)  # type: ignore[arg-type]
            continue
        if kind == "explain":
            query, line_no = payload  # type: ignore[misc]
            try:
                plan = engine.plan(query)
            except (ReproError, ValueError) as exc:
                had_row_errors = True
                print(
                    f"{source}:{line_no}: task {query.task_id!r}: {exc}",
                    file=sys.stderr,
                )
                rows.append(_batch_error_row(query.task_id, line_no, str(exc)))
                continue
            rows.append(
                {"task": query.task_id, "status": "ok", "explain": plan.describe()}
            )
            continue
        outcome = outcomes[payload]  # type: ignore[index]
        if outcome.ok:
            rows.append(_batch_ok_row(outcome.task_id, outcome.result))
        else:
            had_row_errors = True
            line_no = query_lines[payload]  # type: ignore[index]
            print(
                f"{source}:{line_no}: task {outcome.task_id!r}: {outcome.error}",
                file=sys.stderr,
            )
            rows.append(
                _batch_error_row(outcome.task_id, line_no, outcome.error or "failed")
            )

    rendered = "\n".join(json.dumps(row) for row in rows)
    if args.out is None:
        print(rendered)
    else:
        try:
            Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 2 if had_row_errors else 0


def _build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-select batch",
        description="Answer many jury-selection queries from a JSONL file "
        "through the batch engine (shared pools are swept once).",
    )
    parser.add_argument(
        "input",
        help="JSONL file: pool rows ({'pool','candidates'}) and query rows "
        "({'task', 'pool'|'candidates', 'model', ...})",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write result JSONL here instead of stdout",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for exact queries (default: in-process)",
    )
    return parser


# ----------------------------------------------------------------------
# explain subcommand
# ----------------------------------------------------------------------


def _single_query_args(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by the single-query select and explain modes."""
    parser.add_argument("csv", help="candidates CSV: id,error_rate[,requirement]")
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="PayM budget; omit for the altruistic (AltrM) model",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="use the exact optimum (enumeration / branch-and-bound) instead "
        "of the greedy PayALG; only meaningful with --budget",
    )
    parser.add_argument(
        "--variant",
        choices=("paper", "improved"),
        default="paper",
        help="PayALG variant (default: paper)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )


def _single_query_plan(args: argparse.Namespace):
    """Plan the single-query CSV mode's selection (shared select/explain)."""
    candidates = load_candidates_csv(args.csv)
    if args.budget is None:
        model = "altr"
    elif args.exact:
        model = "exact"
    else:
        model = "pay"
    return plan_query(
        candidates=candidates,
        model=model,
        budget=args.budget,
        variant=args.variant,
        method=getattr(args, "method", "auto"),
        max_size=getattr(args, "max_size", None),
        task_id=str(args.csv),
    )


def run_explain(args: argparse.Namespace) -> int:
    """Execute the ``explain`` subcommand.  Returns a process exit code."""
    try:
        plan = _single_query_plan(args)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(plan.describe(), indent=2))
    else:
        print(_render_plan_text(plan))
    return 0


def _build_explain_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-select explain",
        description="Print the physical plan (operator, backends, cost-model "
        "inputs) a query would execute with, without executing it.",
    )
    _single_query_args(parser)
    parser.add_argument(
        "--method",
        choices=("auto", "enumerate", "branch-and-bound"),
        default="auto",
        help="exact-solver preference (default: auto, the cost model decides)",
    )
    parser.add_argument(
        "--max-size",
        type=int,
        default=None,
        dest="max_size",
        help="cap on the jury size",
    )
    return parser


# ----------------------------------------------------------------------
# serve subcommand
# ----------------------------------------------------------------------


def _serve_select(
    engine: BatchSelectionEngine, obj: dict, where: str
) -> dict:
    """Execute one serve-session ``select`` command and build its response."""
    if "pool" in obj and "candidates" in obj:
        raise ReproError(f"{where}: give either 'pool' or 'candidates', not both")
    pool_name: str | None = None
    candidates: tuple[Juror, ...] | None = None
    pool_version: int | None = None
    if "pool" in obj:
        pool_name = str(obj["pool"])
        # Resolve eagerly so an unknown name is a located error, and so the
        # response can echo the version the selection ran against.
        pool_version = engine.registry.get(pool_name).version
    elif "candidates" in obj:
        candidates = tuple(_parse_candidates_json(obj["candidates"], where))
    else:
        raise ReproError(
            f"{where}: select needs a 'pool' reference or inline 'candidates'"
        )
    query = _build_query(obj, where, pool_name=pool_name, candidates=candidates)
    if obj.get("explain"):
        plan = engine.plan(query)
        row = {"ok": True, "task": query.task_id, "explain": plan.describe()}
        if pool_version is not None:
            row["pool_version"] = pool_version
        return row
    outcome = engine.run([query])[0]
    if not outcome.ok:
        raise ReproError(f"{where}: task {query.task_id!r}: {outcome.error}")
    row = _batch_ok_row(query.task_id, outcome.result)
    row["ok"] = True
    if pool_version is not None:
        row["pool_version"] = pool_version
    return row


def _validated_pool_update(
    pool, obj: dict, where: str
) -> tuple[list[str], list[Juror], list[tuple[str, Juror]]]:
    """Validate a serve ``pool update`` fully before any mutation.

    Simulates the membership through remove -> add -> set order (the order
    the update is applied in) and re-validates every value a mutation would
    validate, so applying the returned plan cannot fail halfway: the update
    is atomic from the client's point of view.
    """
    removes = obj.get("remove", [])
    adds_json = obj.get("add", [])
    sets = obj.get("set", [])
    for field_name, value in (("remove", removes), ("add", adds_json), ("set", sets)):
        if not isinstance(value, list):
            raise ReproError(
                f"{where}: '{field_name}' must be an array, "
                f"got {type(value).__name__}"
            )
    adds = _parse_candidates_json(adds_json, where) if adds_json else []

    membership = {j.juror_id: j for j in pool.ordered}
    remove_ids = []
    for entry in removes:
        juror_id = str(entry)
        if membership.pop(juror_id, None) is None:
            raise ReproError(f"{where}: juror {juror_id!r} is not in the pool")
        remove_ids.append(juror_id)
    for juror in adds:
        if juror.juror_id in membership:
            raise ReproError(
                f"{where}: juror {juror.juror_id!r} is already in the pool"
            )
        membership[juror.juror_id] = juror
    updates: list[tuple[str, Juror]] = []
    for position, entry in enumerate(sets):
        if not isinstance(entry, dict) or "id" not in entry:
            raise ReproError(
                f"{where}: set entry #{position} must be an object with an 'id'"
            )
        juror_id = str(entry["id"])
        current = membership.get(juror_id)
        if current is None:
            raise ReproError(f"{where}: juror {juror_id!r} is not in the pool")
        try:
            replacement = Juror(
                entry.get("error_rate", current.error_rate),
                entry.get("requirement", current.requirement),
                juror_id=juror_id,
            )
        except ReproError as exc:
            raise ReproError(f"{where}: set entry #{position}: {exc}") from exc
        membership[juror_id] = replacement
        updates.append((juror_id, replacement))
    return remove_ids, adds, updates


def _serve_pool(engine: BatchSelectionEngine, obj: dict, where: str) -> dict:
    """Execute one serve-session ``pool`` command and build its response."""
    registry = engine.registry
    action = obj.get("action")
    if action not in ("create", "update", "drop"):
        raise ReproError(
            f"{where}: pool action must be 'create', 'update' or 'drop', "
            f"got {action!r}"
        )
    name = str(obj.get("name") or "")
    if not name:
        raise ReproError(f"{where}: pool command needs a non-empty 'name'")

    if action == "create":
        if "candidates" not in obj:
            raise ReproError(f"{where}: pool create needs 'candidates'")
        candidates = _parse_candidates_json(obj["candidates"], where)
        pool = registry.create(name, candidates, replace=bool(obj.get("replace", False)))
    elif action == "drop":
        pool = registry.drop(name)
        if pool.size:
            # Free the dropped pool's current profile from the sweep cache
            # (older versions' entries, if any, age out via LRU).
            engine.cache.invalidate(pool.fingerprint)
        return {"ok": True, "cmd": "pool", "action": "drop", "name": name,
                "version": pool.version, "size": pool.size}
    else:  # update
        pool = registry.get(name)
        remove_ids, adds, updates = _validated_pool_update(pool, obj, where)
        for juror_id in remove_ids:
            pool.remove_juror(juror_id)
        for juror in adds:
            pool.add_juror(juror)
        for juror_id, replacement in updates:
            pool.update_juror(
                juror_id,
                error_rate=replacement.error_rate,
                requirement=replacement.requirement,
            )
    return {"ok": True, "cmd": "pool", "action": action, "name": name,
            "version": pool.version, "size": pool.size}


def run_serve(args: argparse.Namespace, *, stdin=None, stdout=None) -> int:
    """Execute the ``serve`` subcommand: a long-lived JSONL session.

    Reads one JSON command per line from ``stdin`` and writes one JSON
    response per command to ``stdout`` (flushed per line, so the session can
    be driven interactively or over a pipe).  Returns the process exit code.
    """
    source = sys.stdin if stdin is None else stdin
    sink = sys.stdout if stdout is None else stdout
    registry = PoolRegistry()
    engine_options = {} if args.cache_size is None else {"cache_size": args.cache_size}
    engine = BatchSelectionEngine(
        max_workers=args.workers, registry=registry, **engine_options
    )
    had_errors = False

    def respond(row: dict) -> None:
        print(json.dumps(row), file=sink, flush=True)

    for line_no, raw in enumerate(source, start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        where = f"<serve>:{line_no}"
        try:
            obj = json.loads(stripped)
            if not isinstance(obj, dict):
                raise ReproError(f"{where}: command must be a JSON object")
            cmd = obj.get("cmd")
            if cmd == "quit":
                respond({"ok": True, "cmd": "quit"})
                break
            elif cmd == "pool":
                respond(_serve_pool(engine, obj, where))
            elif cmd == "select":
                respond(_serve_select(engine, obj, where))
            elif cmd == "stats":
                respond({
                    "ok": True,
                    "cmd": "stats",
                    "pools": {
                        name: {
                            "version": registry.get(name).version,
                            "size": registry.get(name).size,
                        }
                        for name in registry.names()
                    },
                    "queries_run": engine.stats.queries_run,
                    "live_profiles": engine.stats.live_profiles,
                    "cache": {
                        "hits": engine.cache.hits,
                        "misses": engine.cache.misses,
                        "evictions": engine.cache.evictions,
                        "entries": len(engine.cache),
                    },
                })
            else:
                raise ReproError(
                    f"{where}: unknown cmd {cmd!r}; expected 'pool', 'select', "
                    "'stats' or 'quit'"
                )
        except json.JSONDecodeError as exc:
            had_errors = True
            print(f"{where}: invalid JSON: {exc.msg}", file=sys.stderr)
            respond({"ok": False, "line": line_no, "error": f"invalid JSON: {exc.msg}"})
        except (ReproError, TypeError, ValueError) as exc:
            # ReproError covers domain failures; bare TypeError/ValueError
            # covers malformed payloads that slip past the explicit checks.
            # Either way the error stays per-command: the session survives.
            had_errors = True
            print(str(exc), file=sys.stderr)
            respond({"ok": False, "line": line_no, "error": str(exc)})
    return 2 if had_errors else 0


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-select serve",
        description="Long-lived JSONL session: live pool mutations "
        "(create/update/drop) interleaved with selections, over a shared "
        "registry with delta-maintained sweep state.",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="prefix-sweep cache capacity (default: engine default)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for exact queries (default: in-process)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "batch":
        return run_batch(_build_batch_parser().parse_args(arguments[1:]))
    if arguments and arguments[0] == "serve":
        return run_serve(_build_serve_parser().parse_args(arguments[1:]))
    if arguments and arguments[0] == "explain":
        return run_explain(_build_explain_parser().parse_args(arguments[1:]))

    parser = argparse.ArgumentParser(
        prog="repro-select",
        description="Select the minimum-JER jury from a CSV of candidates "
        "(Cao et al., VLDB 2012).  See 'repro-select batch --help' for the "
        "batched JSONL mode and 'repro-select explain --help' for the "
        "plan-only EXPLAIN mode.",
    )
    _single_query_args(parser)
    args = parser.parse_args(arguments)

    try:
        # One path to the kernels: plan the query (the same front door the
        # batch engine and serve session use), then execute the plan.
        result = execute_plan(_single_query_plan(args))
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(_render_json(result) if args.json else _render_text(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
