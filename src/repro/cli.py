"""``repro-select`` — jury selection from the command line.

Every subcommand is a thin transport over one dispatch path: requests are
parsed by :meth:`repro.api.SelectionRequest.from_dict` (the single request
parser), answered by a :class:`repro.api.JuryService`, and encoded from
:meth:`repro.api.SelectionResponse.to_dict` (the single encoder) — wire
protocol v1, tagged ``"v": 1`` on every row.

Single-query mode reads a CSV of candidate jurors and prints the selected
jury:

    repro-select candidates.csv                          # AltrM optimum
    repro-select candidates.csv --budget 1.0             # PayALG greedy
    repro-select candidates.csv --budget 1.0 --exact     # exact optimum
    repro-select candidates.csv --json                   # machine-readable

CSV format: a header line followed by ``id,error_rate[,requirement]`` rows.
The requirement column is optional and defaults to 0 (altruistic jurors).

Explain mode plans a query through the same ``JuryService`` the selection
paths execute through, and prints the chosen physical plan — operator,
numeric backends, cost-model inputs — *without* executing it:

    repro-select explain candidates.csv --budget 1.0
    repro-select explain candidates.csv --exact --json

Batch mode answers many selection queries in one pass through the service's
batch engine (vectorized sweeps, shared-pool caching, optional process pool
for exact queries):

    repro-select batch queries.jsonl                     # JSONL to stdout
    repro-select batch queries.jsonl --out results.jsonl
    repro-select batch queries.jsonl --workers 4         # sharded execution

Batch input is JSON Lines; blank lines and ``#`` comments are skipped.
A row *without* a ``"task"`` key defines a named shared pool:

    {"pool": "P1", "candidates": [{"id": "A", "error_rate": 0.1,
                                   "requirement": 0.2}, ...]}

A row *with* a ``"task"`` key is a query, drawing candidates either from a
previously defined pool (``"pool": "P1"``) or inline (``"candidates"``):

    {"task": "t1", "pool": "P1"}
    {"task": "t2", "pool": "P1", "model": "pay", "budget": 1.0}
    {"task": "t3", "candidates": [...], "model": "exact", "max_size": 7}

Supported query fields: ``model`` (``altr``/``pay``/``exact``, default
``altr``), ``budget``, ``max_size``, ``variant`` (PayALG), ``method``
(exact solver), and ``"explain": true`` — which emits the query's physical
plan (under ``"plan"``) instead of executing it.  One output row is emitted
per query row, in input order: ``status: "ok"`` rows carry the selection,
``status: "error"`` rows carry a structured
``{"code": ..., "message": ..., "detail": ...}`` error object plus the input
``line`` (also echoed to stderr as ``file:line: message``).
Exit codes: 0 — all queries succeeded; 1 — fatal (unreadable input, no
query rows); 2 — completed, but some rows were malformed or failed.

Serve mode keeps a long-lived session on stdin/stdout, backed by the
service's live-pool registry so that pool mutations and selections
interleave without resweeping unchanged state:

    repro-select serve                                   # JSONL in, JSONL out

One JSON command per input line; one JSON response per command, flushed
immediately.  Commands:

    {"cmd": "pool", "action": "create", "name": "P1", "candidates": [...]}
    {"cmd": "pool", "action": "update", "name": "P1",
     "add": [...], "remove": ["id", ...],
     "set": [{"id": "A", "error_rate": 0.25, "requirement": 0.4}, ...]}
    {"cmd": "pool", "action": "drop", "name": "P1"}
    {"cmd": "select", "task": "t1", "pool": "P1", "model": "altr", ...}
    {"cmd": "stats"}
    {"cmd": "quit"}

Pool responses echo ``{"ok": true, "name", "version", "size"}`` (versions
increase monotonically, one per mutation); ``select`` responses carry the
same fields as batch-mode ok rows plus ``ok`` and ``pool_version``; a
``select`` may also use inline ``"candidates"`` instead of a pool name.
Errors are reported as ``{"ok": false, "line": N, "error": {"code",
"message", ...}}`` without ending the session.  The session ends at EOF or
``quit``; the exit code is 0 when every command succeeded, 2 otherwise.

HTTP mode serves wire protocol v1 over the network, multiplexing every
connection into one async service (coalesced batching, bounded queues,
structured 503s under overload):

    repro-select http                                    # 127.0.0.1:8732
    repro-select http --host 0.0.0.0 --port 80 --workers 4

Endpoints: ``POST /v1/select``, ``POST /v1/select_many``, ``POST /v1/pool``,
``GET /v1/stats``, ``GET /healthz``.  The server prints
``serving on http://host:port`` once bound (``--port 0`` picks an ephemeral
port) and drains gracefully on SIGTERM/SIGINT: in-flight requests finish,
worker shards are reaped, then the process exits 0.

Every subcommand closes its service on the way out — normal exit, EOF or
Ctrl-C — so no worker shard processes outlive the CLI.

``batch``, ``serve``, ``http`` and ``explain`` are reserved words in the
first argument position; to select from a CSV file with one of those names,
pass it as ``./batch``.
"""

from __future__ import annotations

import argparse
import asyncio
import csv
import json
import os
import signal
import sys
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.api import (
    ErrorInfo,
    JuryService,
    PoolCommand,
    PROTOCOL_VERSION,
    SelectionRequest,
    SelectionResponse,
    error_code,
)
from repro.core import kernels
from repro.core.juror import Juror
from repro.errors import ReproError
from repro.service.sched import SCHEDULER_POLICIES

__all__ = [
    "load_candidates_csv",
    "main",
    "run_batch",
    "run_explain",
    "run_http",
    "run_serve",
]


def load_candidates_csv(path: str | Path) -> list[Juror]:
    """Parse a candidates CSV into jurors.

    Expects a header containing ``id`` and ``error_rate`` columns and an
    optional ``requirement`` column; extra columns are ignored.
    """
    source = Path(path)
    jurors: list[Juror] = []
    with source.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ReproError(f"{source}: empty CSV")
        fields = {name.strip().lower() for name in reader.fieldnames}
        if "id" not in fields or "error_rate" not in fields:
            raise ReproError(
                f"{source}: header must contain 'id' and 'error_rate' columns, "
                f"got {sorted(fields)}"
            )
        for row_number, row in enumerate(reader, start=2):
            normalised = {k.strip().lower(): v for k, v in row.items() if k}
            try:
                jurors.append(
                    Juror(
                        float(normalised["error_rate"]),
                        float(normalised.get("requirement") or 0.0),
                        juror_id=normalised["id"].strip(),
                    )
                )
            except (KeyError, TypeError, ValueError, ReproError) as exc:
                raise ReproError(f"{source}:{row_number}: bad candidate row: {exc}") from exc
    if not jurors:
        raise ReproError(f"{source}: no candidate rows")
    return jurors


# ----------------------------------------------------------------------
# renderers (text only — JSON comes from SelectionResponse.to_dict)
# ----------------------------------------------------------------------


def _render_text(response: SelectionResponse) -> str:
    lines = [response.summary(), "members:"]
    for juror in sorted(response.members, key=lambda j: j.error_rate):
        lines.append(
            f"  {juror.juror_id}: eps={juror.error_rate:.6g}, "
            f"r={juror.requirement:.6g}"
        )
    return "\n".join(lines)


def _render_plan_text(info: Mapping) -> str:
    """Human-readable EXPLAIN rendering of an embedded plan mapping."""
    cost = info["cost"]
    lines = [
        f"model: {info['model']}",
        f"pool_size: {info['pool_size']}",
        f"operator: {info['operator']}",
        f"jer_backend: {info['jer_backend']}",
        f"pmf_backend: {info['pmf_backend']}",
        f"kernel_backend: {info.get('kernel_backend', 'numpy')}",
    ]
    if info["budget"] is not None:
        lines.append(f"budget: {info['budget']:g}")
        lines.append(f"affordable: {cost['affordable']}")
        lines.append(f"budget_tightness: {cost['budget_tightness']:.3f}")
    if info["max_size"] is not None:
        lines.append(f"max_size: {info['max_size']}")
    if info["variant"] is not None:
        lines.append(f"variant: {info['variant']}")
    if info["method"] is not None:
        lines.append(f"method: {info['method']}")
    lines.append("estimates:")
    for entry in cost["estimates"]:
        lines.append(f"  {entry['operator']}: ~{entry['ops']:.3g} ops")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# batch subcommand
# ----------------------------------------------------------------------


def _invalid_json_info(exc: json.JSONDecodeError) -> ErrorInfo:
    """Structured error for an unparseable input line (code from the registry)."""
    return ErrorInfo(code=error_code(exc), message=f"invalid JSON: {exc.msg}")


def _error_row(task_id: str | None, line: int | None, info: ErrorInfo) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "task": task_id,
        "status": "error",
        "line": line,
        "error": info.to_dict(),
    }


def run_batch(args: argparse.Namespace) -> int:
    """Execute the ``batch`` subcommand.  Returns a process exit code."""
    source = Path(args.input)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    _apply_kernel_backend(args)
    service = JuryService(
        workers=args.workers,
        frontier_size=0 if getattr(args, "no_frontier", False) else None,
        scheduler=_apply_scheduler(args),
    )
    try:
        return _run_batch_rows(args, source, text, service)
    finally:
        # Reap the worker shards on every exit path — success, fatal row
        # errors and Ctrl-C alike — so no processes outlive the CLI.
        service.close()


def _run_batch_rows(
    args: argparse.Namespace, source: Path, text: str, service: JuryService
) -> int:
    # Output slots in input order: finished row dicts, or integer keys into
    # ``resolved`` for requests answered by a later select_many flush.
    slots: list[dict | int] = []
    resolved: dict[int, dict] = {}
    pending: list[tuple[int, SelectionRequest, int]] = []  # (key, request, line)
    request_rows = 0
    had_row_errors = False

    def flush() -> None:
        """Answer all pending requests with one batched service pass."""
        nonlocal had_row_errors
        if not pending:
            return
        responses = service.select_many([request for _, request, _ in pending])
        for (key, request, line_no), response in zip(pending, responses):
            if response.status == "error":
                had_row_errors = True
                print(
                    f"{source}:{line_no}: task {request.task_id!r}: "
                    f"{response.error.message}",
                    file=sys.stderr,
                )
                resolved[key] = _error_row(request.task_id, line_no, response.error)
            else:
                resolved[key] = response.to_dict()
        pending.clear()

    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        where = f"{source}:{line_no}"
        try:
            obj = json.loads(stripped)
            if not isinstance(obj, dict):
                raise ReproError(f"{where}: row must be a JSON object")
        except json.JSONDecodeError as exc:
            print(f"{where}: invalid JSON: {exc.msg}", file=sys.stderr)
            slots.append(_error_row(None, line_no, _invalid_json_info(exc)))
            had_row_errors = True
            continue
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            slots.append(_error_row(None, line_no, ErrorInfo.from_exception(exc)))
            had_row_errors = True
            continue

        if "task" not in obj:
            # Pool-definition row: materialise it in the service registry.
            try:
                if "pool" not in obj or "candidates" not in obj:
                    raise ReproError(
                        f"{where}: row without 'task' must define a pool "
                        "('pool' + 'candidates')"
                    )
                command = PoolCommand.from_dict(
                    {
                        "action": "create",
                        "name": str(obj["pool"]),
                        "candidates": obj["candidates"],
                        "replace": True,
                    },
                    where=where,
                )
                if command.name in service.registry:
                    # Redefinition: answer the queries parsed so far against
                    # the pool's current contents before replacing it.
                    flush()
                service.pool(command)
            except ReproError as exc:
                print(str(exc), file=sys.stderr)
                slots.append(_error_row(None, line_no, ErrorInfo.from_exception(exc)))
                had_row_errors = True
            continue

        try:
            request = SelectionRequest.from_dict(obj, where=where)
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            task = str(obj["task"]) if "task" in obj else None
            slots.append(_error_row(task, line_no, ErrorInfo.from_exception(exc)))
            had_row_errors = True
            continue
        if request.pool is not None and request.pool not in service.registry:
            message = f"{where}: query references undefined pool {request.pool!r}"
            print(message, file=sys.stderr)
            info = ErrorInfo(
                code="pool-not-found", message=message, detail={"where": where}
            )
            slots.append(_error_row(request.task_id, line_no, info))
            had_row_errors = True
            continue
        request_rows += 1
        key = len(resolved) + len(pending)
        pending.append((key, request, line_no))
        slots.append(key)

    if not request_rows and not had_row_errors:
        print(f"error: {source}: no query rows", file=sys.stderr)
        return 1
    flush()

    rows = [slot if isinstance(slot, dict) else resolved[slot] for slot in slots]
    rendered = "\n".join(json.dumps(row) for row in rows)
    if args.out is None:
        print(rendered)
    else:
        try:
            Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 2 if had_row_errors else 0


def _build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-select batch",
        description="Answer many jury-selection queries from a JSONL file "
        "through the batch engine (shared pools are swept once).",
    )
    parser.add_argument(
        "input",
        help="JSONL file: pool rows ({'pool','candidates'}) and query rows "
        "({'task', 'pool'|'candidates', 'model', ...})",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write result JSONL here instead of stdout",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker shards executing the queries (all models), partitioned "
        "by pool fingerprint; results are bit-identical to in-process "
        "execution (default: REPRO_WORKERS env var, else in-process)",
    )
    _add_no_frontier_flag(parser)
    _add_kernel_backend_flag(parser)
    _add_scheduler_flag(parser)
    return parser


def _add_data_dir_flag(parser: argparse.ArgumentParser) -> None:
    """``--data-dir`` for the long-lived modes (serve/http)."""
    parser.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="durable pool catalog directory: every pool mutation is "
        "WAL-logged (fsync per record) with periodic columnar snapshots, "
        "and a restart recovers bit-identical pools from disk "
        "(default: REPRO_DATA_DIR env var, else in-memory only)",
    )


def _add_no_frontier_flag(parser: argparse.ArgumentParser) -> None:
    """The answer-frontier opt-out shared by batch/serve/http."""
    parser.add_argument(
        "--no-frontier",
        action="store_true",
        help="disable the answer-frontier cache so every query runs the "
        "full plan->operator path (results are bit-identical either way; "
        "equivalent to REPRO_FRONTIER_CACHE=0)",
    )


def _add_kernel_backend_flag(parser: argparse.ArgumentParser) -> None:
    """The compiled-kernel backend selector shared by batch/serve/http."""
    parser.add_argument(
        "--kernel-backend",
        choices=kernels.BACKEND_CHOICES,
        default=None,
        dest="kernel_backend",
        help="compiled backend for the hot JER/PMF kernels: 'auto' prefers "
        "a verified compiled backend past the measured crossovers, "
        "'numpy'/'numba'/'native' force one (an unavailable forced backend "
        "falls back to numpy); results are bit-identical on every backend "
        "(default: REPRO_KERNEL_BACKEND env var, else auto)",
    )


def _apply_kernel_backend(args: argparse.Namespace) -> None:
    """Pin the session kernel backend before the service is constructed.

    Also exported through the environment so worker shard processes
    (``--workers``) inherit the same choice on spawn.
    """
    choice = getattr(args, "kernel_backend", None)
    if choice is None:
        return
    os.environ["REPRO_KERNEL_BACKEND"] = choice
    kernels.set_kernel_backend(choice)


def _add_scheduler_flag(parser: argparse.ArgumentParser) -> None:
    """The shard-scheduling policy selector shared by batch/serve/http."""
    parser.add_argument(
        "--scheduler",
        choices=SCHEDULER_POLICIES,
        default=None,
        dest="scheduler",
        help="shard scheduling policy: 'cost' bin-packs queries across "
        "worker shards by planner cost (with exact-query splitting and "
        "work stealing), 'hash' partitions statically by pool fingerprint; "
        "selections are bit-identical under either policy "
        "(default: REPRO_SCHEDULER env var, else cost)",
    )


def _apply_scheduler(args: argparse.Namespace) -> str | None:
    """Pin the scheduling policy before the service is constructed.

    Also exported through the environment so any late construction path
    (and child processes) sees the same choice.  Returns the explicit
    choice, or ``None`` to defer to ``REPRO_SCHEDULER``/the default.
    """
    choice = getattr(args, "scheduler", None)
    if choice is None:
        return None
    os.environ["REPRO_SCHEDULER"] = choice
    return choice


# ----------------------------------------------------------------------
# single-query + explain subcommands
# ----------------------------------------------------------------------


def _single_query_args(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by the single-query select and explain modes."""
    parser.add_argument("csv", help="candidates CSV: id,error_rate[,requirement]")
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="PayM budget; omit for the altruistic (AltrM) model",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="use the exact optimum (enumeration / branch-and-bound) instead "
        "of the greedy PayALG; only meaningful with --budget",
    )
    parser.add_argument(
        "--variant",
        choices=("paper", "improved"),
        default="paper",
        help="PayALG variant (default: paper)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )


def _single_query_request(args: argparse.Namespace) -> SelectionRequest:
    """Build the protocol request for the single-query CSV modes."""
    candidates = load_candidates_csv(args.csv)
    if args.budget is None:
        model = "altr"
    elif args.exact:
        model = "exact"
    else:
        model = "pay"
    return SelectionRequest(
        task_id=str(args.csv),
        candidates=tuple(candidates),
        model=model,
        budget=args.budget,
        max_size=getattr(args, "max_size", None),
        variant=args.variant,
        method=getattr(args, "method", "auto"),
    )


def run_explain(args: argparse.Namespace) -> int:
    """Execute the ``explain`` subcommand.  Returns a process exit code."""
    try:
        request = _single_query_request(args)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    service = JuryService()
    try:
        response = service.explain(request)
    finally:
        service.close()
    if response.status == "error":
        print(f"error: {response.error.message}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(response.plan, indent=2))
    else:
        print(_render_plan_text(response.plan))
    return 0


def _build_explain_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-select explain",
        description="Print the physical plan (operator, backends, cost-model "
        "inputs) a query would execute with, without executing it.",
    )
    _single_query_args(parser)
    parser.add_argument(
        "--method",
        choices=("auto", "enumerate", "branch-and-bound"),
        default="auto",
        help="exact-solver preference (default: auto, the cost model decides)",
    )
    parser.add_argument(
        "--max-size",
        type=int,
        default=None,
        dest="max_size",
        help="cap on the jury size",
    )
    return parser


# ----------------------------------------------------------------------
# serve subcommand
# ----------------------------------------------------------------------


def run_serve(args: argparse.Namespace, *, stdin=None, stdout=None) -> int:
    """Execute the ``serve`` subcommand: a long-lived JSONL session.

    Reads one JSON command per line from ``stdin`` and writes one JSON
    response per command to ``stdout`` (flushed per line, so the session can
    be driven interactively or over a pipe).  Returns the process exit code.
    """
    source = sys.stdin if stdin is None else stdin
    sink = sys.stdout if stdout is None else stdout
    _apply_kernel_backend(args)
    service = JuryService(
        cache_size=args.cache_size,
        workers=args.workers,
        frontier_size=0 if getattr(args, "no_frontier", False) else None,
        data_dir=getattr(args, "data_dir", None),
        scheduler=_apply_scheduler(args),
    )
    try:
        return _serve_session(source, sink, service)
    except KeyboardInterrupt:
        return 130
    finally:
        # Reap the worker shards on every exit path — EOF, 'quit' and
        # Ctrl-C alike — so no processes outlive the session.
        service.close()


def _serve_session(source, sink, service: JuryService) -> int:
    had_errors = False

    def respond(row: dict) -> None:
        print(json.dumps(row), file=sink, flush=True)

    for line_no, raw in enumerate(source, start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        where = f"<serve>:{line_no}"
        try:
            obj = json.loads(stripped)
            if not isinstance(obj, dict):
                raise ReproError(f"{where}: command must be a JSON object")
            cmd = obj.get("cmd")
            if cmd == "quit":
                respond({"ok": True, "cmd": "quit"})
                break
            elif cmd == "pool":
                respond(service.pool(PoolCommand.from_dict(obj, where=where)))
            elif cmd == "select":
                response = service.select(
                    SelectionRequest.from_dict(obj, where=where)
                )
                if response.status == "error":
                    had_errors = True
                    print(response.error.message, file=sys.stderr)
                    respond(
                        {
                            "ok": False,
                            "line": line_no,
                            "error": response.error.to_dict(),
                        }
                    )
                else:
                    respond({"ok": True, **response.to_dict()})
            elif cmd == "stats":
                respond(service.stats())
            else:
                raise ReproError(
                    f"{where}: unknown cmd {cmd!r}; expected 'pool', 'select', "
                    "'stats' or 'quit'"
                )
        except json.JSONDecodeError as exc:
            had_errors = True
            print(f"{where}: invalid JSON: {exc.msg}", file=sys.stderr)
            respond(
                {
                    "ok": False,
                    "line": line_no,
                    "error": _invalid_json_info(exc).to_dict(),
                }
            )
        except (ReproError, TypeError, ValueError) as exc:
            # ReproError covers domain failures; bare TypeError/ValueError
            # covers malformed payloads that slip past the explicit checks.
            # Either way the error stays per-command: the session survives.
            had_errors = True
            print(str(exc), file=sys.stderr)
            respond(
                {
                    "ok": False,
                    "line": line_no,
                    "error": ErrorInfo.from_exception(exc).to_dict(),
                }
            )
    return 2 if had_errors else 0


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-select serve",
        description="Long-lived JSONL session: live pool mutations "
        "(create/update/drop) interleaved with selections, over a shared "
        "registry with delta-maintained sweep state.",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="prefix-sweep cache capacity (default: engine default)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker shards executing the selections (all models), "
        "partitioned by pool fingerprint; results are bit-identical to "
        "in-process execution (default: REPRO_WORKERS env var, else "
        "in-process)",
    )
    _add_data_dir_flag(parser)
    _add_no_frontier_flag(parser)
    _add_kernel_backend_flag(parser)
    _add_scheduler_flag(parser)
    return parser


# ----------------------------------------------------------------------
# http subcommand
# ----------------------------------------------------------------------


async def _serve_http(args: argparse.Namespace) -> int:
    """Bind, announce, serve until SIGTERM/SIGINT, then drain gracefully."""
    from repro.api.aio import AsyncJuryService
    from repro.api.server import HttpServer

    _apply_kernel_backend(args)
    service = AsyncJuryService(
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
        workers=args.workers,
        frontier_size=0 if getattr(args, "no_frontier", False) else None,
        data_dir=getattr(args, "data_dir", None),
        scheduler=_apply_scheduler(args),
    )
    server = HttpServer(
        service,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
    )
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # event loops without signal support (Windows, embedded)
    # The port may be ephemeral (--port 0); announce the bound address so
    # callers (and the lifecycle tests) can find the listener.
    print(f"serving on {server.address}", flush=True)
    serve_task = asyncio.create_task(server.serve_forever())
    stop_task = asyncio.create_task(stop.wait())
    try:
        await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
    finally:
        # Graceful drain: stop accepting, answer in-flight requests, close
        # the service and reap its worker shards.
        await server.aclose()
        serve_task.cancel()
        stop_task.cancel()
        await asyncio.gather(serve_task, stop_task, return_exceptions=True)
    print("drained, shutting down", file=sys.stderr, flush=True)
    return 0


def run_http(args: argparse.Namespace) -> int:
    """Execute the ``http`` subcommand.  Returns a process exit code."""
    try:
        return asyncio.run(_serve_http(args))
    except KeyboardInterrupt:  # pragma: no cover — loops without handlers
        return 130


def _build_http_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-select http",
        description="Serve wire protocol v1 over HTTP (POST /v1/select, "
        "/v1/select_many, /v1/pool, GET /v1/stats, /healthz), multiplexing "
        "every connection into one coalescing async service.  Drains "
        "gracefully on SIGTERM/SIGINT.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8732,
        help="bind port; 0 picks an ephemeral port (default: 8732)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=128,
        dest="max_batch",
        help="largest coalesced engine batch (default: 128)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        dest="max_pending",
        help="bounded pending queue; further selections get a structured "
        "503 instead of queueing (default: 1024)",
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=512,
        dest="max_connections",
        help="simultaneous-connection bound (default: 512)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="prefix-sweep cache capacity (default: engine default)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker shards executing the selections, partitioned by pool "
        "fingerprint; bit-identical to in-process execution (default: "
        "REPRO_WORKERS env var, else in-process)",
    )
    _add_data_dir_flag(parser)
    _add_no_frontier_flag(parser)
    _add_kernel_backend_flag(parser)
    _add_scheduler_flag(parser)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "batch":
        return run_batch(_build_batch_parser().parse_args(arguments[1:]))
    if arguments and arguments[0] == "serve":
        return run_serve(_build_serve_parser().parse_args(arguments[1:]))
    if arguments and arguments[0] == "http":
        return run_http(_build_http_parser().parse_args(arguments[1:]))
    if arguments and arguments[0] == "explain":
        return run_explain(_build_explain_parser().parse_args(arguments[1:]))

    parser = argparse.ArgumentParser(
        prog="repro-select",
        description="Select the minimum-JER jury from a CSV of candidates "
        "(Cao et al., VLDB 2012).  See 'repro-select batch --help' for the "
        "batched JSONL mode, 'repro-select http --help' for the network "
        "server and 'repro-select explain --help' for the plan-only "
        "EXPLAIN mode.",
    )
    _single_query_args(parser)
    args = parser.parse_args(arguments)

    try:
        request = _single_query_request(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    # One dispatch path for every surface: the single-query mode is a
    # service batch of one.
    service = JuryService()
    try:
        response = service.select(request)
    finally:
        service.close()
    if response.status == "error":
        print(f"error: {response.error.message}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(response.to_dict(), indent=2))
    else:
        print(_render_text(response))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
