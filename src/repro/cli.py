"""``repro-select`` — jury selection from the command line.

Reads a CSV of candidate jurors and prints the selected jury:

    repro-select candidates.csv                          # AltrM optimum
    repro-select candidates.csv --budget 1.0             # PayALG greedy
    repro-select candidates.csv --budget 1.0 --exact     # exact optimum
    repro-select candidates.csv --json                   # machine-readable

CSV format: a header line followed by ``id,error_rate[,requirement]`` rows.
The requirement column is optional and defaults to 0 (altruistic jurors).
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.core.juror import Juror
from repro.core.selection.altr import select_jury_altr
from repro.core.selection.base import SelectionResult
from repro.core.selection.exact import select_jury_optimal
from repro.core.selection.pay import select_jury_pay
from repro.errors import ReproError

__all__ = ["load_candidates_csv", "main"]


def load_candidates_csv(path: str | Path) -> list[Juror]:
    """Parse a candidates CSV into jurors.

    Expects a header containing ``id`` and ``error_rate`` columns and an
    optional ``requirement`` column; extra columns are ignored.
    """
    source = Path(path)
    jurors: list[Juror] = []
    with source.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ReproError(f"{source}: empty CSV")
        fields = {name.strip().lower() for name in reader.fieldnames}
        if "id" not in fields or "error_rate" not in fields:
            raise ReproError(
                f"{source}: header must contain 'id' and 'error_rate' columns, "
                f"got {sorted(fields)}"
            )
        for row_number, row in enumerate(reader, start=2):
            normalised = {k.strip().lower(): v for k, v in row.items() if k}
            try:
                jurors.append(
                    Juror(
                        float(normalised["error_rate"]),
                        float(normalised.get("requirement") or 0.0),
                        juror_id=normalised["id"].strip(),
                    )
                )
            except (KeyError, TypeError, ValueError, ReproError) as exc:
                raise ReproError(f"{source}:{row_number}: bad candidate row: {exc}") from exc
    if not jurors:
        raise ReproError(f"{source}: no candidate rows")
    return jurors


def _render_text(result: SelectionResult) -> str:
    lines = [result.summary(), "members:"]
    for juror in sorted(result.jury, key=lambda j: j.error_rate):
        lines.append(
            f"  {juror.juror_id}: eps={juror.error_rate:.6g}, "
            f"r={juror.requirement:.6g}"
        )
    return "\n".join(lines)


def _render_json(result: SelectionResult) -> str:
    return json.dumps(
        {
            "algorithm": result.algorithm,
            "model": result.model,
            "budget": result.budget,
            "jer": result.jer,
            "size": result.size,
            "total_cost": result.total_cost,
            "members": [
                {
                    "id": j.juror_id,
                    "error_rate": j.error_rate,
                    "requirement": j.requirement,
                }
                for j in result.jury
            ],
        },
        indent=2,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-select",
        description="Select the minimum-JER jury from a CSV of candidates "
        "(Cao et al., VLDB 2012).",
    )
    parser.add_argument("csv", help="candidates CSV: id,error_rate[,requirement]")
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="PayM budget; omit for the altruistic (AltrM) model",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="use the exact optimum (enumeration / branch-and-bound) instead "
        "of the greedy PayALG; only meaningful with --budget",
    )
    parser.add_argument(
        "--variant",
        choices=("paper", "improved"),
        default="paper",
        help="PayALG variant (default: paper)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    args = parser.parse_args(argv)

    try:
        candidates = load_candidates_csv(args.csv)
        if args.budget is None:
            result = select_jury_altr(candidates)
        elif args.exact:
            result = select_jury_optimal(candidates, budget=args.budget)
        else:
            result = select_jury_pay(
                candidates, budget=args.budget, variant=args.variant
            )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(_render_json(result) if args.json else _render_text(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
